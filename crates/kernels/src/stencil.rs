//! Stencil kernels: a 4×4 Gaussian convolution filter (paper §IV-F2,
//! Algorithm 6; evaluated in §VII-D, Figure 12.b).
//!
//! * [`scalar`] — the classic scalar implementation ("a classic
//!   implementation of a 4×4 Gaussian filter"): per output pixel, 16
//!   load+FMA pairs through the FP-latency accumulation chain.
//! * [`vector`] — a vectorized implementation computing `VL` output pixels
//!   per step: per filter tap, one (mostly L1-resident) image vector load
//!   and one FMA.
//! * [`via`] — Algorithm 6: the image segment is staged in the SSPM once;
//!   each tap's operands come from the scratchpad via `vldxmult.d`
//!   (multiplying with the filter coefficient broadcast in the VRF) so the
//!   inner loop issues no cache accesses at all, and results accumulate in
//!   the SSPM.
//!
//! The default filter is the 4×4 Gaussian kernel; borders are zero-padded
//! as in [`via_formats::reference::convolve2d`].

use crate::context::{KernelRun, SimContext};
use via_core::ViaUnit;
use via_sim::{AluKind, VecOpKind};

/// The 4×4 Gaussian filter used by the paper's evaluation (binomial
/// weights, normalized).
pub fn gaussian4() -> Vec<f64> {
    let w = [1.0, 3.0, 3.0, 1.0];
    let mut f = Vec::with_capacity(16);
    for fy in 0..4 {
        for fx in 0..4 {
            f.push(w[fy] * w[fx] / 64.0);
        }
    }
    f
}

/// Scalar 4×4 convolution baseline.
///
/// # Panics
///
/// Panics if `image.len() != width * height` or `filter.len() != 16`.
pub fn scalar(
    image: &[f64],
    width: usize,
    height: usize,
    filter: &[f64],
    ctx: &SimContext,
) -> KernelRun<Vec<f64>> {
    assert_eq!(image.len(), width * height, "image dimensions mismatch");
    assert_eq!(filter.len(), 16, "filter must be 4x4");
    let mut e = ctx.baseline_engine();
    let il = e.alloc_mut().alloc_f64(image.len().max(1));
    let fl = e.alloc_mut().alloc_f64(16);
    let ol = e.alloc_mut().alloc_f64(image.len().max(1));

    let out = via_formats::reference::convolve2d(image, width, height, filter, 4);
    // Filter coefficients loaded once into registers.
    let coeffs: Vec<via_sim::Reg> = (0..16).map(|t| e.load(fl.addr_of(t), 8)).collect();
    e.region("pixel loop");
    for y in 0..height {
        for x in 0..width {
            let mut acc = e.scalar_op(AluKind::Int, &[]);
            for fy in 0..4usize {
                for fx in 0..4usize {
                    let iy = y as isize + fy as isize - 2;
                    let ix = x as isize + fx as isize - 2;
                    if iy < 0 || iy >= height as isize || ix < 0 || ix >= width as isize {
                        continue;
                    }
                    let pix = e.load(il.addr_of(iy as usize * width + ix as usize), 8);
                    acc = e.scalar_op(AluKind::FpFma, &[pix, coeffs[fy * 4 + fx], acc]);
                }
            }
            e.store(ol.addr_of(y * width + x), 8, &[acc]);
            e.scalar_op(AluKind::Int, &[]);
        }
    }
    e.region_end();
    KernelRun::finish_baseline(out, e)
}

/// Vectorized 4×4 convolution baseline (`VL` output pixels per step).
///
/// # Panics
///
/// Panics if `image.len() != width * height` or `filter.len() != 16`.
pub fn vector(
    image: &[f64],
    width: usize,
    height: usize,
    filter: &[f64],
    ctx: &SimContext,
) -> KernelRun<Vec<f64>> {
    assert_eq!(image.len(), width * height, "image dimensions mismatch");
    assert_eq!(filter.len(), 16, "filter must be 4x4");
    let vl = ctx.vl();
    let mut e = ctx.baseline_engine();
    let il = e.alloc_mut().alloc_f64(image.len().max(1));
    let fl = e.alloc_mut().alloc_f64(16);
    let ol = e.alloc_mut().alloc_f64(image.len().max(1));

    let out = via_formats::reference::convolve2d(image, width, height, filter, 4);
    let coeffs: Vec<via_sim::Reg> = (0..16).map(|t| e.load(fl.addr_of(t), 8)).collect();
    e.region("pixel loop");
    for y in 0..height {
        let mut x = 0usize;
        while x < width {
            let len = vl.min(width - x);
            let mut acc = e.vec_op(VecOpKind::Add, &[]);
            for fy in 0..4usize {
                let iy = y as isize + fy as isize - 2;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                for fx in 0..4usize {
                    let ix0 = x as isize + fx as isize - 2;
                    // Unaligned vector load of the image row slice
                    // (clamped to the row; borders handled by masking).
                    let lo = ix0.max(0) as usize;
                    let pix = e.load(
                        il.addr_of(iy as usize * width + lo.min(width - 1)),
                        (8 * len) as u32,
                    );
                    acc = e.vec_op(VecOpKind::Fma, &[pix, coeffs[fy * 4 + fx], acc]);
                }
            }
            e.store(ol.addr_of(y * width + x), (8 * len) as u32, &[acc]);
            e.scalar_op(AluKind::Int, &[]);
            x += len;
        }
    }
    e.region_end();
    KernelRun::finish_baseline(out, e)
}

/// VIA stencil (paper Algorithm 6): image segments staged in the SSPM,
/// per-tap operands read from the scratchpad (`vldxmult.d` with the
/// coefficient broadcast from the VRF), results accumulated in the SSPM
/// and flushed per segment.
///
/// The SSPM is split into an input region (rows of the image segment plus
/// 3 halo rows) and an output region, like the CSB SpMV split.
///
/// # Panics
///
/// Panics if `image.len() != width * height`, `filter.len() != 16`, or one
/// image row plus halo cannot fit half the SSPM.
pub fn via(
    image: &[f64],
    width: usize,
    height: usize,
    filter: &[f64],
    ctx: &SimContext,
) -> KernelRun<Vec<f64>> {
    assert_eq!(image.len(), width * height, "image dimensions mismatch");
    assert_eq!(filter.len(), 16, "filter must be 4x4");
    let vl = ctx.vl();
    let entries = ctx.via.entries();
    let half = entries / 2;
    // Segment geometry: `seg_rows` output rows need `seg_rows + 3` input
    // rows resident.
    let max_rows = half / width.max(1);
    assert!(
        max_rows >= 4,
        "an image row plus halo must fit half the SSPM ({} entries, width {width})",
        entries
    );
    let seg_rows = max_rows - 3;
    let mut e = ctx.via_engine();
    let mut via = ViaUnit::new(ctx.via);
    let il = e.alloc_mut().alloc_f64(image.len().max(1));
    let fl = e.alloc_mut().alloc_f64(16);
    let ol = e.alloc_mut().alloc_f64(image.len().max(1));

    let out = via_formats::reference::convolve2d(image, width, height, filter, 4);
    let coeffs: Vec<via_sim::Reg> = (0..16).map(|t| e.load(fl.addr_of(t), 8)).collect();
    let out_base = half as u32;

    let mut y0 = 0usize;
    while y0 < height {
        let rows_here = seg_rows.min(height - y0);
        via.vldx_clear(&mut e);
        // Stage the input rows [y0-2, y0+rows_here+1] (clamped) in the SSPM.
        e.region("stage");
        let in_lo = y0.saturating_sub(2);
        let in_hi = (y0 + rows_here).min(height - 1);
        for iy in in_lo..=in_hi {
            let mut x = 0usize;
            while x < width {
                let len = vl.min(width - x);
                let reg = e.load(il.addr_of(iy * width + x), (8 * len) as u32);
                let idx: Vec<u32> = (0..len)
                    .map(|l| ((iy - in_lo) * width + x + l) as u32)
                    .collect();
                via.vldx_load_d(
                    &mut e,
                    &idx,
                    &image[iy * width + x..iy * width + x + len],
                    &[reg],
                );
                x += len;
            }
        }
        // Convolve: one fused `vldxblkmult.d` per tap per VL pixels. The
        // merged index packs (output position << idx_bits) | input
        // position, the coefficient is broadcast as the data operand, and
        // the instruction reads the input pixel, multiplies, and
        // accumulates into the output region — exactly the CSB datapath
        // re-targeted at the stencil access pattern (Algorithm 6's "read
        // the operand data from the SSPM... reduce and accumulate results
        // in SSPM").
        e.region_end();
        e.region("convolve");
        let idx_bits = (usize::BITS - (half - 1).leading_zeros()).max(1);
        for dy in 0..rows_here {
            let y = y0 + dy;
            let mut x = 0usize;
            while x < width {
                let len = vl.min(width - x);
                for fy in 0..4usize {
                    let iy = y as isize + fy as isize - 2;
                    if iy < (in_lo as isize) || iy > (in_hi as isize) {
                        continue;
                    }
                    let sspm_row = (iy as usize - in_lo) * width;
                    for fx in 0..4usize {
                        // Per-lane merged (out, in) indices; border lanes
                        // are dropped (zero-padding).
                        let mut idx = Vec::with_capacity(len);
                        for l in 0..len {
                            let ix = (x + l) as isize + fx as isize - 2;
                            if ix < 0 || ix >= width as isize {
                                continue;
                            }
                            let in_pos = (sspm_row + ix as usize) as u32;
                            let out_pos = (dy * width + x + l) as u32;
                            idx.push((out_pos << idx_bits) | in_pos);
                        }
                        if idx.is_empty() {
                            continue;
                        }
                        let coeff = filter[fy * 4 + fx];
                        via.vldx_blk_mult_d(
                            &mut e,
                            &idx,
                            &vec![coeff; idx.len()],
                            idx_bits,
                            out_base,
                            &[coeffs[fy * 4 + fx]],
                        );
                    }
                }
                e.scalar_op(AluKind::Int, &[]);
                x += len;
            }
        }
        e.region_end();
        // Flush the output segment, batching SSPM reads ahead of stores.
        e.region("flush");
        for dy in 0..rows_here {
            let mut x = 0usize;
            while x < width {
                let mut group: Vec<(usize, usize, via_sim::Reg)> = Vec::with_capacity(8);
                for _ in 0..8 {
                    if x >= width {
                        break;
                    }
                    let len = vl.min(width - x);
                    let idx: Vec<u32> = (0..len)
                        .map(|l| out_base + (dy * width + x + l) as u32)
                        .collect();
                    let (reg, vals) = via.vldx_mov_d(&mut e, &idx, &[]);
                    for (l, &v) in vals.iter().enumerate() {
                        debug_assert!(
                            (v - out[(y0 + dy) * width + x + l]).abs() < 1e-9,
                            "SSPM convolution mismatch at ({}, {})",
                            y0 + dy,
                            x + l
                        );
                    }
                    group.push((x, len, reg));
                    x += len;
                }
                for (gx, len, reg) in group {
                    e.store(ol.addr_of((y0 + dy) * width + gx), (8 * len) as u32, &[reg]);
                }
            }
        }
        e.region_end();
        y0 += rows_here;
    }
    let events = via.events();
    KernelRun::finish_via(out, e, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_formats::reference;

    fn ctx() -> SimContext {
        SimContext::default()
    }

    fn image(w: usize, h: usize, seed: u64) -> Vec<f64> {
        via_formats::gen::dense_vector(w * h, seed)
            .into_iter()
            .map(|v| v.abs())
            .collect()
    }

    #[test]
    fn gaussian_filter_is_normalized() {
        let f = gaussian4();
        assert_eq!(f.len(), 16);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_matches_reference() {
        let (w, h) = (16, 12);
        let img = image(w, h, 1);
        let f = gaussian4();
        let run = scalar(&img, w, h, &f, &ctx());
        let expected = reference::convolve2d(&img, w, h, &f, 4);
        assert!(via_formats::vec_approx_eq(&run.output, &expected, 1e-9));
    }

    #[test]
    fn vector_matches_reference() {
        let (w, h) = (16, 12);
        let img = image(w, h, 2);
        let f = gaussian4();
        let run = vector(&img, w, h, &f, &ctx());
        let expected = reference::convolve2d(&img, w, h, &f, 4);
        assert!(via_formats::vec_approx_eq(&run.output, &expected, 1e-9));
    }

    #[test]
    fn via_matches_reference_and_uses_sspm() {
        let (w, h) = (16, 12);
        let img = image(w, h, 3);
        let f = gaussian4();
        let run = via(&img, w, h, &f, &ctx());
        let expected = reference::convolve2d(&img, w, h, &f, 4);
        assert!(via_formats::vec_approx_eq(&run.output, &expected, 1e-9));
        assert!(run.stats.custom_ops > 0);
        let ev = run.sspm_events.unwrap();
        assert!(ev.sram_reads > 0 && ev.sram_writes > 0);
    }

    #[test]
    fn via_segments_tall_images() {
        // 4 KB SSPM: 512 entries, half = 256; width 32 ⇒ 8 rows per half,
        // 5 output rows per segment on a 20-row image ⇒ 4 segments.
        let small = SimContext::with_via(via_core::ViaConfig::new(4, 2));
        let (w, h) = (32, 20);
        let img = image(w, h, 4);
        let f = gaussian4();
        let run = via(&img, w, h, &f, &small);
        let expected = reference::convolve2d(&img, w, h, &f, 4);
        assert!(via_formats::vec_approx_eq(&run.output, &expected, 1e-9));
    }

    #[test]
    fn via_beats_scalar() {
        let (w, h) = (32, 32);
        let img = image(w, h, 5);
        let f = gaussian4();
        let s = scalar(&img, w, h, &f, &ctx());
        let v = via(&img, w, h, &f, &ctx());
        assert!(
            v.cycles() < s.cycles(),
            "VIA stencil ({}) should beat scalar ({})",
            v.cycles(),
            s.cycles()
        );
    }

    #[test]
    #[should_panic(expected = "image row plus halo")]
    fn via_rejects_too_wide_images() {
        let small = SimContext::with_via(via_core::ViaConfig::new(4, 2));
        let img = vec![0.0; 1024 * 2];
        via(&img, 1024, 2, &gaussian4(), &small);
    }

    #[test]
    fn constant_image_gives_constant_interior() {
        let (w, h) = (12, 12);
        let img = vec![1.0; w * h];
        let f = gaussian4();
        let run = via(&img, w, h, &f, &ctx());
        // Interior pixels (away from the zero-padded border) should be ~1.
        assert!((run.output[5 * w + 5] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emitted_streams_verify_clean() {
        use via_sim::verify;
        let _guard = verify::capture_guard();
        let (w, h) = (16, 12);
        let img = image(w, h, 9);
        let f = gaussian4();
        scalar(&img, w, h, &f, &ctx());
        vector(&img, w, h, &f, &ctx());
        via(&img, w, h, &f, &ctx());
        let reports = verify::drain_captured();
        assert!(reports.len() >= 3, "one report per kernel engine");
        for r in &reports {
            assert!(r.is_clean(), "{}", r.render());
        }
    }
}

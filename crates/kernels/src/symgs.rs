//! SymGS kernels: one symmetric Gauss–Seidel sweep (forward then backward)
//! of `A x ≈ b` — the smoother at the heart of HPCG and multigrid
//! preconditioners, and the second dependency-carried kernel family next
//! to [`crate::sptrsv`].
//!
//! A forward sweep relaxes `x[i] = (b[i] - Σ_{j≠i} A[i][j]·x[j]) / A[i][i]`
//! in row order: reads below the diagonal see *this* sweep's values, reads
//! above it see the *previous* state. The backward sweep mirrors that. The
//! new-side reads are the SpTRSV dependency chain, so the same
//! [`Schedule`] knob applies:
//!
//! * [`Schedule::RowSerial`] — sequential rows; indexed reads wait
//!   conservatively on the previous row's update (store-to-load ordering).
//! * [`Schedule::Levels`] — wavefronts from the strict lower
//!   ([`LevelSchedule::from_lower`]) / upper ([`LevelSchedule::from_upper`])
//!   triangle. To keep old-side reads order-independent, the sweep first
//!   snapshots `x` and serves them from the copy — extra traffic that the
//!   wavefront overlap has to pay for (a real tuning trade-off).
//!
//! [`via_sspm`] keeps the active `x` segment in the SSPM: new-side
//! in-segment products come from `vldxmult.d`, while *memory* doubles as
//! the old-value snapshot for free — the segment flush only publishes new
//! values after the whole segment is relaxed, so old-side reads just load
//! `x` from DRAM regardless of schedule.

use crate::context::{KernelRun, SimContext};
use crate::layout::{CsrLayout, VecLayout};
use crate::sptrsv::{fold_tokens, row_groups, Schedule, DIV_EXTRA_CYCLES};
use via_core::{AluOp, Dest, ViaUnit};
use via_formats::{Csr, LevelSchedule};
use via_sim::{AluKind, Engine, Reg, VecOpKind};

fn check_inputs(a: &Csr, b: &[f64], x0: &[f64]) {
    assert_eq!(a.rows(), a.cols(), "A must be square");
    assert_eq!(b.len(), a.rows(), "b length must equal matrix rows");
    assert_eq!(x0.len(), a.rows(), "x0 length must equal matrix rows");
}

/// One scalar symmetric Gauss–Seidel sweep in row-serial order.
/// Equivalent to [`scalar_with`]`(a, b, x0, ctx, Schedule::RowSerial)`.
///
/// # Panics
///
/// Panics if `a` is not square with a full non-zero diagonal, or on a
/// `b`/`x0` length mismatch.
pub fn scalar(a: &Csr, b: &[f64], x0: &[f64], ctx: &SimContext) -> KernelRun<Vec<f64>> {
    scalar_with(a, b, x0, ctx, Schedule::RowSerial)
}

/// One scalar symmetric Gauss–Seidel sweep with an explicit [`Schedule`]
/// knob. Both schedules compute bitwise-identical values (the level
/// variant reads old-side values from a snapshot, so reordering cannot
/// observe a partially updated `x`).
///
/// # Panics
///
/// Panics as [`scalar`].
pub fn scalar_with(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    ctx: &SimContext,
    schedule: Schedule,
) -> KernelRun<Vec<f64>> {
    check_inputs(a, b, x0);
    let n = a.rows();
    let mut e = ctx.baseline_engine();
    let lay = CsrLayout::new(e.alloc_mut(), a);
    let bl = VecLayout::new(e.alloc_mut(), n.max(1));
    let xl = VecLayout::new(e.alloc_mut(), n.max(1));
    // Old-value snapshot, used by the level schedule only.
    let sl = VecLayout::new(e.alloc_mut(), n.max(1));

    let mut x = x0.to_vec();
    let fwd_sched = (schedule == Schedule::Levels).then(|| LevelSchedule::from_lower(a));
    let bwd_sched = (schedule == Schedule::Levels).then(|| LevelSchedule::from_upper(a));
    let mut guard: Option<Reg> = None;
    scalar_sweep(
        &mut e,
        a,
        b,
        &lay,
        &bl,
        &xl,
        &sl,
        &mut x,
        schedule,
        fwd_sched.as_ref(),
        false,
        &mut guard,
        ctx.vl(),
    );
    scalar_sweep(
        &mut e,
        a,
        b,
        &lay,
        &bl,
        &xl,
        &sl,
        &mut x,
        schedule,
        bwd_sched.as_ref(),
        true,
        &mut guard,
        ctx.vl(),
    );
    KernelRun::finish_baseline(x, e)
}

#[allow(clippy::too_many_arguments)]
fn scalar_sweep(
    e: &mut Engine,
    a: &Csr,
    b: &[f64],
    lay: &CsrLayout,
    bl: &VecLayout,
    xl: &VecLayout,
    sl: &VecLayout,
    x: &mut [f64],
    schedule: Schedule,
    levels: Option<&LevelSchedule>,
    backward: bool,
    guard: &mut Option<Reg>,
    vl: usize,
) {
    let n = a.rows();
    // Functional old-side values: what x held when the sweep began. Under
    // either schedule an old-side read must see the pre-sweep value, which
    // the live array no longer guarantees once rows are reordered.
    let x_old: Vec<f64> = x.to_vec();
    // Forward store elision: a forward x[i] update is only ever read
    // through memory by rows j > i whose row carries an entry in column i
    // (forward new-side reads, backward old-side reads, and the backward
    // snapshot's copied chunks all reduce to that same set). Rows without
    // such a reader keep their update in a register and skip the store —
    // the backward sweep rewrites x[i] before anyone could observe it.
    let read_later: Option<Vec<bool>> = (!backward).then(|| {
        let mut read = vec![false; n];
        for i in 0..n {
            for &c in a.row(i).0 {
                if (c as usize) < i {
                    read[c as usize] = true;
                }
            }
        }
        read
    });
    // Level mode: snapshot x so old-side reads are order-independent. Only
    // chunks that contain at least one old-side-read element are copied —
    // the rest would be overwritten by the next sweep's snapshot unread.
    let snap_bar = if schedule == Schedule::Levels {
        let mut old_read = vec![false; n];
        for i in 0..n {
            for &c in a.row(i).0 {
                let c = c as usize;
                if if backward { c < i } else { c > i } {
                    old_read[c] = true;
                }
            }
        }
        e.region(if backward {
            "snapshot (backward)"
        } else {
            "snapshot (forward)"
        });
        let mut tokens: Vec<Reg> = Vec::new();
        let mut r = 0usize;
        while r < n {
            let len = vl.min(n - r);
            if old_read[r..r + len].iter().any(|&b| b) {
                let gdeps: &[Reg] = match guard {
                    Some(g) => std::slice::from_ref(g),
                    None => &[],
                };
                let ld = e.load_dep(xl.data.addr_of(r), (8 * len) as u32, gdeps);
                e.store(sl.data.addr_of(r), (8 * len) as u32, &[ld]);
                tokens.push(ld);
            }
            r += len;
        }
        e.region_end();
        fold_tokens(e, *guard, &tokens)
    } else {
        None
    };
    e.region(if backward {
        "backward sweep"
    } else {
        "forward sweep"
    });
    for group in row_groups(schedule, levels, 0, n, backward) {
        let mut tokens: Vec<Reg> = Vec::with_capacity(group.len());
        for i in group {
            let (cols, vals) = a.row(i);
            let base = a.row_ptr()[i];
            let rp = e.load(lay.row_ptr.addr_of(i), 8);
            let rp_next = e.load(lay.row_ptr.addr_of(i + 1), 8);
            let bound = e.scalar_op(AluKind::Int, &[rp, rp_next]);
            let mut acc_reg = e.load(bl.data.addr_of(i), 8);
            let mut acc = b[i];
            let mut diag = 0.0;
            let mut diag_reg = acc_reg;
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                let j = base + k;
                let col_reg = e.load(lay.col_idx.addr_of(j), 4);
                let val_reg = e.load(lay.data.addr_of(j), 8);
                let c = c as usize;
                if c == i {
                    diag = v;
                    diag_reg = val_reg;
                } else {
                    let new_side = if backward { c > i } else { c < i };
                    let x_reg = if new_side || schedule == Schedule::RowSerial {
                        // New-side read (or any indexed read under the
                        // conservative row-serial ordering): behind the
                        // schedule's barrier.
                        let mut deps = [col_reg, col_reg];
                        let mut nd = 1;
                        if let Some(g) = *guard {
                            deps[1] = g;
                            nd = 2;
                        }
                        e.load_dep(xl.data.addr_of(c), 8, &deps[..nd])
                    } else {
                        // Old-side read under the level schedule: from the
                        // snapshot, behind the copy barrier only.
                        let mut deps = [col_reg, col_reg];
                        let mut nd = 1;
                        if let Some(sb) = snap_bar {
                            deps[1] = sb;
                            nd = 2;
                        }
                        e.load_dep(sl.data.addr_of(c), 8, &deps[..nd])
                    };
                    acc_reg = e.scalar_op(AluKind::FpFma, &[val_reg, x_reg, acc_reg]);
                    acc -= v * if new_side { x[c] } else { x_old[c] };
                }
                e.scalar_op(AluKind::Int, &[bound]);
            }
            assert!(diag != 0.0, "A has a zero/missing diagonal at row {i}");
            let q = e.scalar_op(AluKind::FpMul, &[acc_reg, diag_reg]);
            let q = e.delay(DIV_EXTRA_CYCLES, &[q]);
            x[i] = acc / diag;
            if read_later.as_ref().is_none_or(|r| r[i]) {
                e.store(xl.data.addr_of(i), 8, &[q]);
            }
            tokens.push(q);
        }
        *guard = fold_tokens(e, *guard, &tokens);
    }
    e.region_end();
}

/// One VIA symmetric Gauss–Seidel sweep in row-serial order with the
/// default flush group. Equivalent to
/// [`via_sspm_with`]`(a, b, x0, ctx, Schedule::RowSerial, 8)`.
///
/// # Panics
///
/// Panics as [`scalar`].
pub fn via_sspm(a: &Csr, b: &[f64], x0: &[f64], ctx: &SimContext) -> KernelRun<Vec<f64>> {
    via_sspm_with(a, b, x0, ctx, Schedule::RowSerial, 8)
}

/// One VIA symmetric Gauss–Seidel sweep: the active `x` segment lives in
/// the SSPM; new-side in-segment products come from `vldxmult.d`
/// (`Dest::Vrf`), every other read loads `x` from memory — which still
/// holds the pre-segment values, so memory *is* the old-value snapshot
/// and both schedules compute identical results without extra copies.
///
/// # Panics
///
/// Panics as [`scalar`], or if `flush_group == 0`.
pub fn via_sspm_with(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    ctx: &SimContext,
    schedule: Schedule,
    flush_group: usize,
) -> KernelRun<Vec<f64>> {
    check_inputs(a, b, x0);
    assert!(flush_group > 0, "flush_group must be positive");
    let n = a.rows();
    let mut e = ctx.via_engine();
    let mut via = ViaUnit::new(ctx.via);
    let lay = CsrLayout::new(e.alloc_mut(), a);
    let bl = VecLayout::new(e.alloc_mut(), n.max(1));
    let xl = VecLayout::new(e.alloc_mut(), n.max(1));

    let mut x = x0.to_vec();
    let fwd_sched = (schedule == Schedule::Levels).then(|| LevelSchedule::from_lower(a));
    let bwd_sched = (schedule == Schedule::Levels).then(|| LevelSchedule::from_upper(a));
    let mut guard: Option<Reg> = None;
    via_sweep(
        &mut e,
        &mut via,
        a,
        b,
        &lay,
        &bl,
        &xl,
        &mut x,
        schedule,
        fwd_sched.as_ref(),
        false,
        flush_group,
        &mut guard,
        ctx,
    );
    via_sweep(
        &mut e,
        &mut via,
        a,
        b,
        &lay,
        &bl,
        &xl,
        &mut x,
        schedule,
        bwd_sched.as_ref(),
        true,
        flush_group,
        &mut guard,
        ctx,
    );
    let events = via.events();
    KernelRun::finish_via(x, e, events)
}

#[allow(clippy::too_many_arguments)]
fn via_sweep(
    e: &mut Engine,
    via: &mut ViaUnit,
    a: &Csr,
    b: &[f64],
    lay: &CsrLayout,
    bl: &VecLayout,
    xl: &VecLayout,
    x: &mut [f64],
    schedule: Schedule,
    levels: Option<&LevelSchedule>,
    backward: bool,
    flush_group: usize,
    guard: &mut Option<Reg>,
    ctx: &SimContext,
) {
    let n = a.rows();
    let vl = ctx.vl();
    let seg_len = ctx.via.entries();
    let num_segs = n.div_ceil(seg_len);
    let mut gather_addrs: Vec<u64> = Vec::with_capacity(vl);
    for s in 0..num_segs {
        // Backward sweeps walk the segments in reverse.
        let s = if backward { num_segs - 1 - s } else { s };
        let seg_start = s * seg_len;
        let seg_end = (seg_start + seg_len).min(n);
        let seg_rows = seg_end - seg_start;
        via.vldx_clear(e);
        // Stage the segment's current x in the SSPM.
        e.region("stage");
        {
            let mut r = 0usize;
            while r < seg_rows {
                let len = vl.min(seg_rows - r);
                let gdeps: &[Reg] = match guard {
                    Some(g) => std::slice::from_ref(g),
                    None => &[],
                };
                let ld = e.load_dep(xl.data.addr_of(seg_start + r), (8 * len) as u32, gdeps);
                let idx: Vec<u32> = (0..len).map(|l| (r + l) as u32).collect();
                via.vldx_load_d(e, &idx, &x[seg_start + r..seg_start + r + len], &[ld]);
                r += len;
            }
        }
        e.region_end();
        e.region(if backward {
            "backward sweep"
        } else {
            "forward sweep"
        });
        for group in row_groups(schedule, levels, seg_start, seg_end, backward) {
            let mut tokens: Vec<Reg> = Vec::with_capacity(group.len());
            for i in group {
                let (cols, vals) = a.row(i);
                let base = a.row_ptr()[i];
                let gdeps: &[Reg] = match guard {
                    Some(g) => std::slice::from_ref(g),
                    None => &[],
                };
                let rp = e.load(lay.row_ptr.addr_of(i), 8);
                let rp_next = e.load(lay.row_ptr.addr_of(i + 1), 8);
                let bound = e.scalar_op(AluKind::Int, &[rp, rp_next]);
                let mut acc_reg = e.load_dep(bl.data.addr_of(i), 8, gdeps);
                let mut acc = b[i];
                let pos_diag = cols
                    .iter()
                    .position(|&c| c as usize == i)
                    .unwrap_or_else(|| panic!("A has a missing diagonal at row {i}"));
                let diag = vals[pos_diag];
                assert!(diag != 0.0, "A has a zero diagonal at row {i}");
                // The new-side in-segment range reads the SSPM; everything
                // else (old-side, and new-side already flushed to memory)
                // loads x from DRAM. All three ranges are contiguous in the
                // sorted row.
                let (sspm_lo, sspm_hi) = if backward {
                    // c > i and c < seg_end.
                    let hi = cols.partition_point(|&c| (c as usize) < seg_end);
                    (pos_diag + 1, hi)
                } else {
                    // c < i and c >= seg_start.
                    let lo = cols.partition_point(|&c| (c as usize) < seg_start);
                    (lo, pos_diag)
                };
                // Neither memory range contains the diagonal, so they chunk
                // without carve-outs.
                let mem_ranges = [
                    (0, sspm_lo.min(pos_diag)),
                    (sspm_hi.max(pos_diag + 1), cols.len()),
                ];
                for (mut k, hi) in mem_ranges {
                    while k < hi {
                        let len = vl.min(hi - k);
                        let j = base + k;
                        let col_reg = e.load_dep(lay.col_idx.addr_of(j), (4 * len) as u32, gdeps);
                        let val_reg = e.load(lay.data.addr_of(j), (8 * len) as u32);
                        gather_addrs.clear();
                        gather_addrs.extend(
                            cols[k..k + len]
                                .iter()
                                .map(|&c| xl.data.addr_of(c as usize)),
                        );
                        let x_reg = e.gather(&gather_addrs, 8, &[col_reg]);
                        let prod = e.vec_op(VecOpKind::Mul, &[val_reg, x_reg]);
                        let red = e.vec_op(VecOpKind::Reduce, &[prod]);
                        acc_reg = e.scalar_op(AluKind::FpAdd, &[acc_reg, red]);
                        for (&c, &v) in cols[k..k + len].iter().zip(&vals[k..k + len]) {
                            acc -= v * x[c as usize];
                        }
                        e.scalar_op(AluKind::Int, &[bound]);
                        k += len;
                    }
                }
                let mut k = sspm_lo;
                while k < sspm_hi {
                    let len = vl.min(sspm_hi - k);
                    let j = base + k;
                    let col_reg = e.load_dep(lay.col_idx.addr_of(j), (4 * len) as u32, gdeps);
                    let val_reg = e.load(lay.data.addr_of(j), (8 * len) as u32);
                    let idx: Vec<u32> = cols[k..k + len]
                        .iter()
                        .map(|&c| c - seg_start as u32)
                        .collect();
                    let (preg, prods) = via.vldx_alu_d(
                        e,
                        AluOp::Mult,
                        &idx,
                        &vals[k..k + len],
                        Dest::Vrf,
                        &[col_reg, val_reg],
                    );
                    let red = e.vec_op(VecOpKind::Reduce, &[preg]);
                    acc_reg = e.scalar_op(AluKind::FpAdd, &[acc_reg, red]);
                    for p in prods.expect("Dest::Vrf returns values") {
                        acc -= p;
                    }
                    e.scalar_op(AluKind::Int, &[bound]);
                    k += len;
                }
                let diag_reg = e.load(lay.data.addr_of(base + pos_diag), 8);
                let q = e.scalar_op(AluKind::FpMul, &[acc_reg, diag_reg]);
                let q = e.delay(DIV_EXTRA_CYCLES, &[q]);
                // The relaxed value goes to the SSPM only; `x` stays the
                // memory image until the segment flush publishes it, so
                // old-side reads of `x` below see pre-segment values under
                // either schedule.
                let xi = acc / diag;
                tokens.push(via.vldx_load_d(e, &[(i - seg_start) as u32], &[xi], &[q]));
            }
            *guard = fold_tokens(e, *guard, &tokens);
        }
        e.region_end();
        // Publish the relaxed segment back to memory.
        e.region("flush");
        let mut flush_tokens: Vec<Reg> = Vec::new();
        let mut r = 0usize;
        while r < seg_rows {
            let mut group: Vec<(usize, usize, Reg)> = Vec::with_capacity(flush_group);
            for _ in 0..flush_group {
                if r >= seg_rows {
                    break;
                }
                let len = vl.min(seg_rows - r);
                let idx: Vec<u32> = (0..len).map(|l| (r + l) as u32).collect();
                let (reg, vals) = via.vldx_mov_d(e, &idx, &[]);
                x[seg_start + r..seg_start + r + len].copy_from_slice(&vals);
                group.push((r, len, reg));
                r += len;
            }
            for (gr, len, reg) in group {
                e.store(xl.data.addr_of(seg_start + gr), (8 * len) as u32, &[reg]);
                flush_tokens.push(reg);
            }
        }
        *guard = fold_tokens(e, *guard, &flush_tokens);
        e.region_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_formats::gen;
    use via_formats::reference;

    fn ctx() -> SimContext {
        SimContext::default()
    }

    fn tiny_ctx() -> SimContext {
        // 128 SSPM entries: a 300-row sweep needs three segments.
        SimContext::with_via(via_core::ViaConfig::new(1, 2))
    }

    fn system(rows: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let a = gen::make_diagonally_dominant(&gen::uniform(rows, rows, 0.05, seed));
        let b = gen::dense_vector(rows, seed + 1);
        let x0 = gen::dense_vector(rows, seed + 2);
        (a, b, x0)
    }

    fn want(a: &Csr, b: &[f64], x0: &[f64]) -> Vec<f64> {
        let mut x = x0.to_vec();
        reference::symgs(a, b, &mut x);
        x
    }

    #[test]
    fn scalar_matches_reference_under_both_schedules() {
        let (a, b, x0) = system(96, 42);
        let want = want(&a, &b, &x0);
        for schedule in [Schedule::RowSerial, Schedule::Levels] {
            let run = scalar_with(&a, &b, &x0, &ctx(), schedule);
            assert!(
                via_formats::vec_approx_eq(&run.output, &want, 1e-9),
                "scalar {} wrong",
                schedule.name()
            );
            assert!(run.stats.cycles > 0);
        }
    }

    #[test]
    fn via_matches_reference_under_both_schedules() {
        let (a, b, x0) = system(300, 42);
        let want = want(&a, &b, &x0);
        for c in [ctx(), tiny_ctx()] {
            for schedule in [Schedule::RowSerial, Schedule::Levels] {
                let run = via_sspm_with(&a, &b, &x0, &c, schedule, 8);
                assert!(
                    via_formats::vec_approx_eq(&run.output, &want, 1e-9),
                    "via {} wrong for {}",
                    schedule.name(),
                    c.via.name()
                );
                assert!(run.stats.custom_ops > 0);
            }
        }
    }

    #[test]
    fn both_schedules_compute_identical_values() {
        // The snapshot (scalar) / memory-as-snapshot (VIA) old-side reads
        // make the result schedule-independent — bitwise, not just close.
        let (a, b, x0) = system(128, 7);
        let serial = scalar_with(&a, &b, &x0, &ctx(), Schedule::RowSerial);
        let levels = scalar_with(&a, &b, &x0, &ctx(), Schedule::Levels);
        assert_eq!(serial.output, levels.output);
        let serial = via_sspm_with(&a, &b, &x0, &ctx(), Schedule::RowSerial, 8);
        let levels = via_sspm_with(&a, &b, &x0, &ctx(), Schedule::Levels, 8);
        assert_eq!(serial.output, levels.output);
    }

    #[test]
    fn a_sweep_reduces_the_residual() {
        let (a, b, x0) = system(96, 5);
        let run = scalar(&a, &b, &x0, &ctx());
        let norm = |x: &[f64]| {
            let ax = reference::spmv(&a, x);
            ax.iter()
                .zip(&b)
                .map(|(y, bi)| (y - bi) * (y - bi))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            norm(&run.output) < 0.5 * norm(&x0),
            "one symmetric sweep should shrink the residual substantially"
        );
    }

    #[test]
    fn default_wrappers_match_the_knobbed_entry_points() {
        let (a, b, x0) = system(96, 11);
        let c = ctx().with_recording();
        let hash =
            |run: &KernelRun<Vec<f64>>| run.compiled.as_ref().expect("recording").stream_hash();
        assert_eq!(
            hash(&scalar(&a, &b, &x0, &c)),
            hash(&scalar_with(&a, &b, &x0, &c, Schedule::RowSerial))
        );
        assert_eq!(
            hash(&via_sspm(&a, &b, &x0, &c)),
            hash(&via_sspm_with(&a, &b, &x0, &c, Schedule::RowSerial, 8))
        );
    }

    #[test]
    fn emitted_streams_verify_clean() {
        use via_sim::verify;
        let _guard = verify::capture_guard();
        let (a, b, x0) = system(96, 42);
        for schedule in [Schedule::RowSerial, Schedule::Levels] {
            scalar_with(&a, &b, &x0, &ctx(), schedule);
            via_sspm_with(&a, &b, &x0, &ctx(), schedule, 8);
            via_sspm_with(&a, &b, &x0, &tiny_ctx(), schedule, 4);
        }
        let reports = verify::drain_captured();
        assert!(reports.len() >= 6, "one report per engine");
        for r in &reports {
            assert!(r.is_clean(), "{}", r.render());
        }
    }
}

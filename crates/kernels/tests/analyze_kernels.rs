//! Static analysis over every shipped kernel: the cycle lower bound must
//! hold against the simulated run, every finding must survive its
//! brute-force oracle (zero false positives against the replay trace), and
//! the emitted streams must be free of dead register writes and unordered
//! must-alias conflicts. Dead stores are pinned to zero for *every* kernel:
//! the two oracle-confirmed offenders from the PR 7 audit (`spmm::via_cam`
//! overwriting staged output rows, `spmspv::spa_dense` resetting occupancy
//! flags nothing reads again) have been fixed at the source, so a nonzero
//! count anywhere is a regression.

use via_formats::{gen, Csb};
use via_kernels::{histogram, spma, spmm, spmspv, spmv, sptrsv, stencil, symgs};
use via_kernels::{KernelRun, Schedule, SimContext};
use via_rng::StdRng;
use via_sim::analyze;
use via_sim::CoreConfig;

/// Analyzes a recorded kernel run and asserts every *soundness* property:
/// the static bound never exceeds the simulated cycles, every finding
/// (with the exemplar cap lifted, so **all** of them) survives its
/// brute-force oracle, no dead register writes, and no unordered
/// must-alias conflicts. Returns the report so callers can pin the
/// kernel-specific expectations (e.g. known dead-store patterns).
fn assert_analyzes_sound<T>(
    name: &str,
    ctx: &SimContext,
    run: &KernelRun<T>,
) -> via_sim::AnalysisReport {
    let stream = run.compiled.as_ref().expect("recording context compiles");
    let is_via = run.sspm_events.is_some();
    let mut cfg = ctx.analyze_config(run);
    cfg.max_exemplars = usize::MAX; // validate every finding, not a sample
    let report = analyze::analyze(stream, &cfg);

    assert!(
        report.bound.lower_cycles <= run.stats.cycles,
        "{name}: static bound {} exceeds simulated {} (terms: {:?})",
        report.bound.lower_cycles,
        run.stats.cycles,
        report.bound
    );
    assert!(report.bound.lower_cycles > 0, "{name}: vacuous bound");
    analyze::validate(stream, &report).unwrap_or_else(|e| panic!("{name}: refuted finding: {e}"));

    assert_eq!(report.dead_writes, 0, "{name}: dead register writes");
    assert_eq!(report.alias_conflicts, 0, "{name}: must-alias conflicts");
    assert!(
        report.whole_stream().accesses > 0,
        "{name}: no memory traffic"
    );
    if is_via {
        assert!(
            report.cam.proven_no_overflow.is_some(),
            "{name}: VIA run must carry a CAM verdict"
        );
    }
    report
}

/// Like [`assert_analyzes_sound`], additionally requiring zero dead
/// stores — the expectation for kernels without a store-overwrite
/// accumulation pattern.
fn assert_analyzes_clean<T>(name: &str, ctx: &SimContext, run: KernelRun<T>) {
    let report = assert_analyzes_sound(name, ctx, &run);
    assert_eq!(report.dead_stores, 0, "{name}: dead stores");
}

#[test]
fn spmv_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.04, 11);
    let x: Vec<f64> = (0..a.cols())
        .map(|i| ((i % 13) as f64) * 0.25 - 1.5)
        .collect();
    assert_analyzes_clean("spmv::csr_vec", &ctx, spmv::csr_vec(&a, &x, &ctx));
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    assert_analyzes_clean("spmv::via_csb", &ctx, spmv::via_csb(&csb, &x, &ctx));
}

#[test]
fn spma_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.04, 11);
    let b = gen::uniform(96, 96, 0.04, 12);
    assert_analyzes_clean("spma::merge_csr", &ctx, spma::merge_csr(&a, &b, &ctx));
    assert_analyzes_clean("spma::via_cam", &ctx, spma::via_cam(&a, &b, &ctx));
}

#[test]
fn spmm_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(48, 48, 0.06, 21);
    let b = gen::uniform(48, 48, 0.06, 22).to_csc();
    assert_analyzes_clean(
        "spmm::inner_product",
        &ctx,
        spmm::inner_product(&a, &b, &ctx),
    );
    // via_cam now appends flushed tiles at a globally monotonic output
    // cursor, so no staged row is ever overwritten: the PR 7 dead stores
    // are gone and the stream must analyze clean.
    assert_analyzes_clean("spmm::via_cam", &ctx, spmm::via_cam(&a, &b, &ctx));
}

#[test]
fn spmspv_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.05, 31).to_csc();
    let x = spmspv::SparseVector::from_pairs((0..12).map(|i| (i * 7 % 96, 1.0 + i as f64)));
    // spa_dense no longer resets its occupancy flags after the compact
    // phase (nothing read the resets, which in turn killed the set-stores
    // of once-touched rows), so the stream must analyze clean.
    assert_analyzes_clean("spmspv::spa_dense", &ctx, spmspv::spa_dense(&a, &x, &ctx));
    assert_analyzes_clean("spmspv::via_cam", &ctx, spmspv::via_cam(&a, &x, &ctx));
}

#[test]
fn sptrsv_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let l = gen::lower_triangular(96, 0.06, 11);
    let b = gen::dense_vector(96, 12);
    for schedule in [Schedule::RowSerial, Schedule::Levels] {
        assert_analyzes_clean(
            &format!("sptrsv::scalar[{}]", schedule.name()),
            &ctx,
            sptrsv::scalar_with(&l, &b, &ctx, schedule),
        );
        assert_analyzes_clean(
            &format!("sptrsv::via_sspm[{}]", schedule.name()),
            &ctx,
            sptrsv::via_sspm_with(&l, &b, &ctx, schedule, 8),
        );
    }
}

#[test]
fn symgs_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::make_diagonally_dominant(&gen::uniform(96, 96, 0.05, 11));
    let b = gen::dense_vector(96, 12);
    let x0 = gen::dense_vector(96, 13);
    for schedule in [Schedule::RowSerial, Schedule::Levels] {
        assert_analyzes_clean(
            &format!("symgs::scalar[{}]", schedule.name()),
            &ctx,
            symgs::scalar_with(&a, &b, &x0, &ctx, schedule),
        );
        assert_analyzes_clean(
            &format!("symgs::via_sspm[{}]", schedule.name()),
            &ctx,
            symgs::via_sspm_with(&a, &b, &x0, &ctx, schedule, 8),
        );
    }
}

#[test]
fn histogram_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..1000).map(|_| rng.random_range(0u32..256)).collect();
    assert_analyzes_clean(
        "histogram::vector_cd",
        &ctx,
        histogram::vector_cd(&keys, 256, &ctx),
    );
    assert_analyzes_clean("histogram::via", &ctx, histogram::via(&keys, 256, &ctx));
}

#[test]
fn stencil_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let side = 20;
    let image: Vec<f64> = (0..side * side).map(|i| ((i % 17) as f64) * 0.5).collect();
    let filter = stencil::gaussian4();
    assert_analyzes_clean(
        "stencil::vector",
        &ctx,
        stencil::vector(&image, side, side, &filter, &ctx),
    );
    assert_analyzes_clean(
        "stencil::via",
        &ctx,
        stencil::via(&image, side, side, &filter, &ctx),
    );
}

/// The wide-vector configuration exercises a different machine shape
/// (vl = 8); the bound must hold there too.
#[test]
fn wide_vector_bound_holds() {
    let ctx = SimContext {
        core: CoreConfig::default().wide_vectors(),
        ..SimContext::default()
    }
    .with_recording();
    let a = gen::uniform(64, 64, 0.05, 7);
    let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 * 0.5).collect();
    assert_analyzes_clean("spmv::csr_vec[wide]", &ctx, spmv::csr_vec(&a, &x, &ctx));
}

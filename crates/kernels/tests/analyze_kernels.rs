//! Static analysis over every shipped kernel: the cycle lower bound must
//! hold against the simulated run, every finding must survive its
//! brute-force oracle (zero false positives against the replay trace), and
//! the emitted streams must be free of dead register writes and unordered
//! must-alias conflicts. Dead stores are pinned per kernel: most kernels
//! have none, while the accumulator-flush kernels (`spmm::via_cam`,
//! `spmspv::spa_dense`) are *expected* to carry oracle-confirmed ones —
//! that expectation doubles as a true-positive test on real code.

use via_formats::{gen, Csb};
use via_kernels::{histogram, spma, spmm, spmspv, spmv, stencil};
use via_kernels::{KernelRun, SimContext};
use via_rng::StdRng;
use via_sim::analyze;
use via_sim::CoreConfig;

/// Analyzes a recorded kernel run and asserts every *soundness* property:
/// the static bound never exceeds the simulated cycles, every finding
/// (with the exemplar cap lifted, so **all** of them) survives its
/// brute-force oracle, no dead register writes, and no unordered
/// must-alias conflicts. Returns the report so callers can pin the
/// kernel-specific expectations (e.g. known dead-store patterns).
fn assert_analyzes_sound<T>(
    name: &str,
    ctx: &SimContext,
    run: &KernelRun<T>,
) -> via_sim::AnalysisReport {
    let stream = run.compiled.as_ref().expect("recording context compiles");
    let is_via = run.sspm_events.is_some();
    let mut cfg = ctx.analyze_config(run);
    cfg.max_exemplars = usize::MAX; // validate every finding, not a sample
    let report = analyze::analyze(stream, &cfg);

    assert!(
        report.bound.lower_cycles <= run.stats.cycles,
        "{name}: static bound {} exceeds simulated {} (terms: {:?})",
        report.bound.lower_cycles,
        run.stats.cycles,
        report.bound
    );
    assert!(report.bound.lower_cycles > 0, "{name}: vacuous bound");
    analyze::validate(stream, &report).unwrap_or_else(|e| panic!("{name}: refuted finding: {e}"));

    assert_eq!(report.dead_writes, 0, "{name}: dead register writes");
    assert_eq!(report.alias_conflicts, 0, "{name}: must-alias conflicts");
    assert!(
        report.whole_stream().accesses > 0,
        "{name}: no memory traffic"
    );
    if is_via {
        assert!(
            report.cam.proven_no_overflow.is_some(),
            "{name}: VIA run must carry a CAM verdict"
        );
    }
    report
}

/// Like [`assert_analyzes_sound`], additionally requiring zero dead
/// stores — the expectation for kernels without a store-overwrite
/// accumulation pattern.
fn assert_analyzes_clean<T>(name: &str, ctx: &SimContext, run: KernelRun<T>) {
    let report = assert_analyzes_sound(name, ctx, &run);
    assert_eq!(report.dead_stores, 0, "{name}: dead stores");
}

#[test]
fn spmv_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.04, 11);
    let x: Vec<f64> = (0..a.cols())
        .map(|i| ((i % 13) as f64) * 0.25 - 1.5)
        .collect();
    assert_analyzes_clean("spmv::csr_vec", &ctx, spmv::csr_vec(&a, &x, &ctx));
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    assert_analyzes_clean("spmv::via_csb", &ctx, spmv::via_csb(&csb, &x, &ctx));
}

#[test]
fn spma_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.04, 11);
    let b = gen::uniform(96, 96, 0.04, 12);
    assert_analyzes_clean("spma::merge_csr", &ctx, spma::merge_csr(&a, &b, &ctx));
    assert_analyzes_clean("spma::via_cam", &ctx, spma::via_cam(&a, &b, &ctx));
}

#[test]
fn spmm_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(48, 48, 0.06, 21);
    let b = gen::uniform(48, 48, 0.06, 22).to_csc();
    assert_analyzes_clean(
        "spmm::inner_product",
        &ctx,
        spmm::inner_product(&a, &b, &ctx),
    );
    // via_cam keeps its accumulation in the SSPM and stores each output
    // tile as it goes; rows overwritten by a later flush are genuine
    // (oracle-confirmed) dead stores, so the analyzer *must* find some.
    let run = spmm::via_cam(&a, &b, &ctx);
    let report = assert_analyzes_sound("spmm::via_cam", &ctx, &run);
    assert!(
        report.dead_stores > 0,
        "spmm::via_cam: expected true-positive dead stores"
    );
}

#[test]
fn spmspv_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let a = gen::uniform(96, 96, 0.05, 31).to_csc();
    let x = spmspv::SparseVector::from_pairs((0..12).map(|i| (i * 7 % 96, 1.0 + i as f64)));
    // spa_dense zero-initializes its dense accumulator with stores that
    // are fully overwritten before any load reads them back — genuine
    // (oracle-confirmed) dead stores the analyzer is expected to surface.
    let run = spmspv::spa_dense(&a, &x, &ctx);
    let report = assert_analyzes_sound("spmspv::spa_dense", &ctx, &run);
    assert!(
        report.dead_stores > 0,
        "spmspv::spa_dense: expected true-positive dead stores"
    );
    assert_analyzes_clean("spmspv::via_cam", &ctx, spmspv::via_cam(&a, &x, &ctx));
}

#[test]
fn histogram_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..1000).map(|_| rng.random_range(0u32..256)).collect();
    assert_analyzes_clean(
        "histogram::vector_cd",
        &ctx,
        histogram::vector_cd(&keys, 256, &ctx),
    );
    assert_analyzes_clean("histogram::via", &ctx, histogram::via(&keys, 256, &ctx));
}

#[test]
fn stencil_streams_analyze_clean() {
    let ctx = SimContext::default().with_recording();
    let side = 20;
    let image: Vec<f64> = (0..side * side).map(|i| ((i % 17) as f64) * 0.5).collect();
    let filter = stencil::gaussian4();
    assert_analyzes_clean(
        "stencil::vector",
        &ctx,
        stencil::vector(&image, side, side, &filter, &ctx),
    );
    assert_analyzes_clean(
        "stencil::via",
        &ctx,
        stencil::via(&image, side, side, &filter, &ctx),
    );
}

/// The wide-vector configuration exercises a different machine shape
/// (vl = 8); the bound must hold there too.
#[test]
fn wide_vector_bound_holds() {
    let ctx = SimContext {
        core: CoreConfig::default().wide_vectors(),
        ..SimContext::default()
    }
    .with_recording();
    let a = gen::uniform(64, 64, 0.05, 7);
    let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 * 0.5).collect();
    assert_analyzes_clean("spmv::csr_vec[wide]", &ctx, spmv::csr_vec(&a, &x, &ctx));
}

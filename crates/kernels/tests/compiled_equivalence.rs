//! Compiled-path equivalence: for every kernel family, the recorded
//! (compile) run and the replay of its [`CompiledStream`] must be
//! bit-identical to the plain interpreted run — same cycles and full
//! [`RunStats`], same stall-cause breakdown, and same captured verify
//! diagnostics. The compile/replay split is a pure performance
//! transformation; any divergence here means it changed what is simulated.

use via_formats::{gen, Csb};
use via_kernels::{histogram, spma, spmm, spmspv, spmv, sptrsv, ssr, stencil, symgs};
use via_kernels::{KernelRun, Schedule, SimContext, TraceOptions};
use via_rng::StdRng;
use via_sim::verify;
use via_sim::Engine;

/// Runs `run_kernel` interpreted, then recorded (compile), then replays
/// the compiled stream on a fresh engine from `replay_engine`, asserting
/// every observable — output, statistics, stall attribution, captured
/// verify reports — is bit-identical across the three paths, and that a
/// second compile reproduces the stream (and its hash) exactly.
fn assert_equivalent<T: PartialEq + std::fmt::Debug>(
    name: &str,
    run_kernel: impl Fn(&SimContext) -> KernelRun<T>,
    replay_engine: impl Fn(&SimContext) -> Engine,
) {
    let ctx = SimContext::default().with_trace(TraceOptions::accounting());

    let guard = verify::capture_guard();
    let interp = run_kernel(&ctx);
    let interp_reports = verify::drain_captured();
    drop(guard);
    assert_eq!(interp_reports.len(), 1, "{name}: one engine, one report");

    let guard = verify::capture_guard();
    let rec = run_kernel(&ctx.clone().with_recording());
    let rec_reports = verify::drain_captured();
    drop(guard);
    let stream = rec.compiled.expect("recording context must compile");

    assert!(
        interp.compiled.is_none(),
        "{name}: plain run must not record"
    );
    assert_eq!(rec.output, interp.output, "{name}: outputs diverged");
    assert_eq!(rec.stats, interp.stats, "{name}: recording changed stats");
    assert_eq!(rec.stall, interp.stall, "{name}: recording changed stalls");
    assert_eq!(
        rec.sspm_events, interp.sspm_events,
        "{name}: recording changed SSPM events"
    );
    assert_eq!(
        rec_reports, interp_reports,
        "{name}: recording changed verify reports"
    );
    assert_eq!(
        stream.verify(),
        &rec_reports[0],
        "{name}: compiled report must equal the recorded run's flush"
    );
    assert_eq!(stream.len() as u64, interp.stats.instructions);

    let guard = verify::capture_guard();
    let mut e = replay_engine(&ctx);
    e.replay(&stream);
    let stall = e.stall_report();
    let stats = e.finish();
    let replay_reports = verify::drain_captured();
    drop(guard);

    assert_eq!(stats, interp.stats, "{name}: replay stats diverged");
    assert_eq!(
        stall, interp.stall,
        "{name}: replay stall breakdown diverged"
    );
    assert_eq!(
        replay_reports, interp_reports,
        "{name}: replay verify reports diverged"
    );
    let rec2 = run_kernel(&ctx.clone().with_recording());
    let stream2 = rec2.compiled.expect("recording context must compile");
    assert_eq!(
        stream2, stream,
        "{name}: recording must be deterministic (instructions, events, \
         verify report, and stream hash all equal across compiles)"
    );
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

#[test]
fn spmv_compiled_paths_are_equivalent() {
    let a = gen::uniform(96, 96, 0.04, 11);
    let x = xvec(a.cols());
    assert_equivalent(
        "spmv::csr_vec",
        |ctx| spmv::csr_vec(&a, &x, ctx),
        SimContext::baseline_engine,
    );
    let csb = Csb::from_csr(&a, SimContext::default().via.csb_block_size()).unwrap();
    assert_equivalent(
        "spmv::via_csb",
        |ctx| spmv::via_csb(&csb, &x, ctx),
        SimContext::via_engine,
    );
}

#[test]
fn spma_compiled_paths_are_equivalent() {
    let a = gen::uniform(96, 96, 0.04, 11);
    let b = gen::uniform(96, 96, 0.04, 12);
    assert_equivalent(
        "spma::merge_csr",
        |ctx| spma::merge_csr(&a, &b, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "spma::via_cam",
        |ctx| spma::via_cam(&a, &b, ctx),
        SimContext::via_engine,
    );
}

#[test]
fn spmm_compiled_paths_are_equivalent() {
    let a = gen::uniform(48, 48, 0.06, 21);
    let b = gen::uniform(48, 48, 0.06, 22).to_csc();
    assert_equivalent(
        "spmm::inner_product",
        |ctx| spmm::inner_product(&a, &b, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "spmm::via_cam",
        |ctx| spmm::via_cam(&a, &b, ctx),
        SimContext::via_engine,
    );
}

#[test]
fn spmspv_compiled_paths_are_equivalent() {
    let a = gen::uniform(96, 96, 0.05, 31).to_csc();
    let x = spmspv::SparseVector::from_pairs((0..12).map(|i| (i * 7 % 96, 1.0 + i as f64)));
    assert_equivalent(
        "spmspv::spa_dense",
        |ctx| spmspv::spa_dense(&a, &x, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "spmspv::via_cam",
        |ctx| spmspv::via_cam(&a, &x, ctx),
        SimContext::via_engine,
    );
}

#[test]
fn sptrsv_compiled_paths_are_equivalent() {
    let l = gen::lower_triangular(96, 0.06, 11);
    let b = gen::dense_vector(96, 12);
    assert_equivalent(
        "sptrsv::scalar[levels]",
        |ctx| sptrsv::scalar_with(&l, &b, ctx, Schedule::Levels),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "sptrsv::via_sspm[levels]",
        |ctx| sptrsv::via_sspm_with(&l, &b, ctx, Schedule::Levels, 8),
        SimContext::via_engine,
    );
}

#[test]
fn symgs_compiled_paths_are_equivalent() {
    let a = gen::make_diagonally_dominant(&gen::uniform(96, 96, 0.05, 11));
    let b = gen::dense_vector(96, 12);
    let x0 = gen::dense_vector(96, 13);
    assert_equivalent(
        "symgs::scalar[row_serial]",
        |ctx| symgs::scalar(&a, &b, &x0, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "symgs::via_sspm[levels]",
        |ctx| symgs::via_sspm_with(&a, &b, &x0, ctx, Schedule::Levels, 8),
        SimContext::via_engine,
    );
}

#[test]
fn histogram_compiled_paths_are_equivalent() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..1000).map(|_| rng.random_range(0u32..256)).collect();
    assert_equivalent(
        "histogram::vector_cd",
        |ctx| histogram::vector_cd(&keys, 256, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "histogram::via",
        |ctx| histogram::via(&keys, 256, ctx),
        SimContext::via_engine,
    );
}

#[test]
fn ssr_compiled_paths_are_equivalent() {
    let a = gen::uniform(96, 96, 0.04, 11);
    let x = xvec(a.cols());
    assert_equivalent(
        "ssr::spmv_csr",
        |ctx| ssr::spmv_csr(&a, &x, ctx),
        SimContext::ssr_engine,
    );
    let a2 = gen::uniform(48, 48, 0.06, 21);
    let b = gen::uniform(48, 48, 0.06, 22);
    assert_equivalent(
        "ssr::spmm_gustavson",
        |ctx| ssr::spmm_gustavson(&a2, &b, ctx),
        SimContext::ssr_engine,
    );
}

#[test]
fn stencil_compiled_paths_are_equivalent() {
    let side = 20;
    let image: Vec<f64> = (0..side * side).map(|i| ((i % 17) as f64) * 0.5).collect();
    let filter = stencil::gaussian4();
    assert_equivalent(
        "stencil::vector",
        |ctx| stencil::vector(&image, side, side, &filter, ctx),
        SimContext::baseline_engine,
    );
    assert_equivalent(
        "stencil::via",
        |ctx| stencil::via(&image, side, side, &filter, ctx),
        SimContext::via_engine,
    );
}

//! Golden cycle-count snapshots.
//!
//! These pin the *exact* simulated cycle counts of representative kernel
//! runs on fixed inputs. Their purpose is to make hot-path/performance work
//! on the engine safe: any optimization of the simulator internals
//! (allocation elimination, cache fast paths, predictor layout) must leave
//! every number here bit-identical, because it must not change what is
//! simulated — only how fast the simulation itself runs.
//!
//! If a change is *meant* to alter the timing model, update these numbers
//! in the same commit and say so; an unexplained diff here is a regression.

use via_formats::{gen, Csb, Csr};
use via_kernels::{histogram, spma, spmv, sptrsv, ssr, symgs, Schedule, SimContext};
use via_rng::StdRng;

fn ctx() -> SimContext {
    SimContext::default()
}

fn golden_a() -> Csr {
    gen::uniform(256, 256, 0.02, 42)
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

#[test]
fn spmv_cycles_are_pinned() {
    let ctx = ctx();
    let a = golden_a();
    let x = xvec(a.cols());
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    let got = [
        spmv::scalar_csr(&a, &x, &ctx).cycles(),
        spmv::csr_vec(&a, &x, &ctx).cycles(),
        spmv::via_csr(&a, &x, &ctx).cycles(),
        spmv::via_csb(&csb, &x, &ctx).cycles(),
    ];
    let expected = [11_216u64, 6_155, 5_339, 2_667];
    assert_eq!(
        got, expected,
        "SpMV golden cycle counts moved (scalar, csr_vec, via_csr, via_csb)"
    );
}

#[test]
fn ssr_cycles_are_pinned() {
    let ctx = ctx();
    let a = golden_a();
    let x = xvec(a.cols());
    let b = gen::uniform(256, 256, 0.02, 43);
    let got = [
        ssr::spmv_csr(&a, &x, &ctx).cycles(),
        ssr::spmm_gustavson(&a, &b, &ctx).cycles(),
    ];
    let expected = [9_258u64, 109_789];
    assert_eq!(
        got, expected,
        "SSR golden cycle counts moved (spmv_csr, spmm_gustavson)"
    );
}

#[test]
fn spma_cycles_are_pinned() {
    let ctx = ctx();
    let a = golden_a();
    let b = gen::uniform(256, 256, 0.02, 43);
    let got = [
        spma::merge_csr(&a, &b, &ctx).cycles(),
        spma::via_cam(&a, &b, &ctx).cycles(),
    ];
    let expected = [63_775u64, 11_152];
    assert_eq!(
        got, expected,
        "SpMA golden cycle counts moved (merge_csr, via_cam)"
    );
}

#[test]
fn sptrsv_cycles_are_pinned() {
    let ctx = ctx();
    let l = gen::lower_triangular(256, 0.04, 42);
    let b = gen::dense_vector(256, 43);
    let got = [
        sptrsv::scalar(&l, &b, &ctx).cycles(),
        sptrsv::scalar_with(&l, &b, &ctx, Schedule::Levels).cycles(),
        sptrsv::via_sspm(&l, &b, &ctx).cycles(),
        sptrsv::via_sspm_with(&l, &b, &ctx, Schedule::Levels, 8).cycles(),
    ];
    let expected = [14_128u64, 13_406, 46_639, 14_972];
    assert_eq!(
        got, expected,
        "SpTRSV golden cycle counts moved (scalar row-serial, scalar levels, via row-serial, via levels)"
    );
}

#[test]
fn symgs_cycles_are_pinned() {
    let ctx = ctx();
    let a = gen::make_diagonally_dominant(&gen::uniform(256, 256, 0.02, 42));
    let b = gen::dense_vector(256, 43);
    let x0 = gen::dense_vector(256, 44);
    let got = [
        symgs::scalar(&a, &b, &x0, &ctx).cycles(),
        symgs::scalar_with(&a, &b, &x0, &ctx, Schedule::Levels).cycles(),
        symgs::via_sspm(&a, &b, &x0, &ctx).cycles(),
        symgs::via_sspm_with(&a, &b, &x0, &ctx, Schedule::Levels, 8).cycles(),
    ];
    let expected = [29_872u64, 16_913, 69_179, 21_912];
    assert_eq!(
        got, expected,
        "SymGS golden cycle counts moved (scalar row-serial, scalar levels, via row-serial, via levels)"
    );
}

#[test]
fn histogram_cycles_are_pinned() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..4000).map(|_| rng.random_range(0u32..256)).collect();
    let got = [
        histogram::scalar(&keys, 256, &ctx).cycles(),
        histogram::vector_cd(&keys, 256, &ctx).cycles(),
        histogram::via(&keys, 256, &ctx).cycles(),
    ];
    let expected = [23_132u64, 15_951, 7_163];
    assert_eq!(
        got, expected,
        "histogram golden cycle counts moved (scalar, vector_cd, via)"
    );
}

//! Golden stall-accounting snapshots.
//!
//! Stall attribution rides the same determinism guarantee as the cycle
//! counts in `golden_cycles.rs`: the per-cause breakdown of a fixed kernel
//! on a fixed matrix is pinned exactly, and the conservation invariant
//! (every simulated cycle attributed to exactly one cause) is asserted for
//! every kernel in the golden suite. The numbers are identical in debug
//! and release builds — the timing model is integer-exact.

use via_formats::{gen, Csb, Csr};
use via_kernels::{histogram, spma, spmv, SimContext, TraceOptions};
use via_rng::StdRng;
use via_sim::{StallCause, StallReport};

fn ctx() -> SimContext {
    SimContext::default().with_trace(TraceOptions::accounting())
}

fn golden_a() -> Csr {
    gen::uniform(256, 256, 0.02, 42)
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

fn assert_conserved(name: &str, report: &StallReport, cycles: u64) {
    assert_eq!(
        report.attributed(),
        cycles,
        "{name}: attributed {} != total cycles {cycles}",
        report.attributed()
    );
    assert_eq!(report.total_cycles, cycles, "{name}: total_cycles mismatch");
    let region_sum: u64 = report.regions.iter().flat_map(|r| r.cycles.iter()).sum();
    assert_eq!(region_sum, cycles, "{name}: regions do not partition total");
}

#[test]
fn conservation_holds_for_every_golden_kernel() {
    let tctx = ctx();
    let plain = SimContext::default();
    let a = golden_a();
    let b = gen::uniform(256, 256, 0.02, 43);
    let x = xvec(a.cols());
    let csb = Csb::from_csr(&a, tctx.via.csb_block_size()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..4000).map(|_| rng.random_range(0u32..256)).collect();

    // (name, traced cycles + report, untraced cycles)
    let runs: Vec<(&str, (u64, Option<StallReport>), u64)> = vec![
        (
            "spmv::scalar_csr",
            {
                let r = spmv::scalar_csr(&a, &x, &tctx);
                (r.cycles(), r.stall)
            },
            spmv::scalar_csr(&a, &x, &plain).cycles(),
        ),
        (
            "spmv::csr_vec",
            {
                let r = spmv::csr_vec(&a, &x, &tctx);
                (r.cycles(), r.stall)
            },
            spmv::csr_vec(&a, &x, &plain).cycles(),
        ),
        (
            "spmv::via_csr",
            {
                let r = spmv::via_csr(&a, &x, &tctx);
                (r.cycles(), r.stall)
            },
            spmv::via_csr(&a, &x, &plain).cycles(),
        ),
        (
            "spmv::via_csb",
            {
                let r = spmv::via_csb(&csb, &x, &tctx);
                (r.cycles(), r.stall)
            },
            spmv::via_csb(&csb, &x, &plain).cycles(),
        ),
        (
            "spma::merge_csr",
            {
                let r = spma::merge_csr(&a, &b, &tctx);
                (r.cycles(), r.stall)
            },
            spma::merge_csr(&a, &b, &plain).cycles(),
        ),
        (
            "spma::via_cam",
            {
                let r = spma::via_cam(&a, &b, &tctx);
                (r.cycles(), r.stall)
            },
            spma::via_cam(&a, &b, &plain).cycles(),
        ),
        (
            "histogram::scalar",
            {
                let r = histogram::scalar(&keys, 256, &tctx);
                (r.cycles(), r.stall)
            },
            histogram::scalar(&keys, 256, &plain).cycles(),
        ),
        (
            "histogram::vector_cd",
            {
                let r = histogram::vector_cd(&keys, 256, &tctx);
                (r.cycles(), r.stall)
            },
            histogram::vector_cd(&keys, 256, &plain).cycles(),
        ),
        (
            "histogram::via",
            {
                let r = histogram::via(&keys, 256, &tctx);
                (r.cycles(), r.stall)
            },
            histogram::via(&keys, 256, &plain).cycles(),
        ),
    ];

    for (name, (cycles, stall), plain_cycles) in runs {
        assert_eq!(
            cycles, plain_cycles,
            "{name}: accounting must be timing-transparent"
        );
        let report = stall.unwrap_or_else(|| panic!("{name}: stall report missing"));
        assert_conserved(name, &report, cycles);
    }
}

#[test]
fn csr_vec_stall_breakdown_is_pinned() {
    let a = golden_a();
    let x = xvec(a.cols());
    let run = spmv::csr_vec(&a, &x, &ctx());
    let report = run.stall.expect("accounting enabled");
    let got: Vec<u64> = StallCause::ALL
        .iter()
        .map(|&c| report.cause_total(c))
        .collect();
    // Pinned per-cause cycle totals, in StallCause::ALL order. These are
    // bit-identical across debug/release; an unexplained diff means the
    // timing model (not just the accounting) changed.
    // rob_full, branch_redirect, fetch_width, dependency, fu_slot,
    // load_port, store_port, sb_drain, dram_bw, commit_gate, commit_width,
    // active.
    let expected: Vec<u64> = vec![0, 0, 0, 0, 0, 161, 0, 0, 174, 0, 721, 5099];
    assert_eq!(
        got,
        expected,
        "csr_vec stall breakdown moved:\n{}",
        report.render(12)
    );
    assert_conserved("spmv::csr_vec", &report, run.stats.cycles);
}

#[test]
fn gather_and_dram_stalls_dominate_csr_and_shrink_under_via() {
    // The acceptance story of paper §VI: the CSR baseline's cycles go to
    // indexed-access ports and DRAM; VIA-CSB removes the gathers, so those
    // causes shrink both absolutely and as a share.
    let tctx = ctx();
    let a = golden_a();
    let x = xvec(a.cols());
    let base = spmv::csr_vec(&a, &x, &tctx).stall.unwrap();
    let csb = Csb::from_csr(&a, tctx.via.csb_block_size()).unwrap();
    let via = spmv::via_csb(&csb, &x, &tctx).stall.unwrap();

    let mem_stalls = |r: &StallReport| {
        r.cause_total(StallCause::LoadPort)
            + r.cause_total(StallCause::StorePort)
            + r.cause_total(StallCause::DramBandwidth)
    };
    let base_mem = mem_stalls(&base);
    let via_mem = mem_stalls(&via);
    // Among genuine resource stalls (pipeline-width pacing excluded — that
    // is the drain artifact of a width-limited commit stage, not a hazard),
    // the indexed-access ports and DRAM must dominate the CSR baseline.
    let pacing = base.cause_total(StallCause::FetchWidth)
        + base.cause_total(StallCause::CommitGate)
        + base.cause_total(StallCause::CommitWidth);
    let other = base.stalled() - pacing - base_mem;
    assert!(
        base_mem > other,
        "gather/scatter + DRAM should dominate CSR baseline hazards: {} vs {}\n{}",
        base_mem,
        other,
        base.render(12)
    );
    assert!(
        via_mem < base_mem,
        "VIA should shrink memory-indexing stalls: {via_mem} vs {base_mem}"
    );
}

#[test]
fn kernel_regions_are_labeled() {
    let tctx = ctx();
    let a = golden_a();
    let x = xvec(a.cols());
    let base = spmv::csr_vec(&a, &x, &tctx).stall.unwrap();
    let names: Vec<&str> = base.regions.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"row loop"), "{names:?}");

    let csb = Csb::from_csr(&a, tctx.via.csb_block_size()).unwrap();
    let via = spmv::via_csb(&csb, &x, &tctx).stall.unwrap();
    let names: Vec<&str> = via.regions.iter().map(|r| r.name.as_str()).collect();
    for want in ["y preload", "accumulate", "flush"] {
        assert!(names.contains(&want), "missing {want:?} in {names:?}");
    }
}

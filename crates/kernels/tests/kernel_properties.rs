//! Property tests: every simulated kernel — baseline or VIA, at any SSPM
//! configuration — must compute exactly what the golden models compute,
//! for arbitrary matrices.

use proptest::prelude::*;
use via_core::ViaConfig;
use via_formats::{reference, Coo, Csb, Csr, DenseMatrix, SellCSigma, Spc5};
use via_kernels::{histogram, spma, spmm, spmv, stencil, SimContext};

fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..=max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -50i32..50), 1..=max_nnz).prop_map(move |trips| {
            let entries = trips
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f64 / 8.0 + 0.062_5));
            Csr::from_coo(
                &Coo::from_triplets(n, n, entries)
                    .expect("in bounds")
                    .into_canonical(),
            )
        })
    })
}

fn arb_via_config() -> impl Strategy<Value = ViaConfig> {
    prop_oneof![
        Just(ViaConfig::new(4, 2)),
        Just(ViaConfig::new(8, 4)),
        Just(ViaConfig::new(16, 2)),
    ]
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_spmv_variant_matches_reference(a in arb_csr(40, 120), cfg in arb_via_config()) {
        let ctx = SimContext::with_via(cfg);
        let x = xvec(a.cols());
        let expected = reference::spmv(&a, &x);
        let vl = ctx.vl();
        let csb = Csb::from_csr(&a, cfg.csb_block_size()).unwrap();
        let spc5 = Spc5::from_csr(&a, vl).unwrap();
        let sell = SellCSigma::from_csr(&a, vl, vl * 2).unwrap();
        for (name, out) in [
            ("scalar", spmv::scalar_csr(&a, &x, &ctx).output),
            ("csr_vec", spmv::csr_vec(&a, &x, &ctx).output),
            ("spc5", spmv::spc5(&spc5, &x, &ctx).output),
            ("sell", spmv::sell(&sell, &x, &ctx).output),
            ("csb_soft", spmv::csb_software(&csb, &x, &ctx).output),
            ("csb_soft_vec", spmv::csb_software_vec(&csb, &x, &ctx).output),
            ("via_csr", spmv::via_csr(&a, &x, &ctx).output),
            ("via_spc5", spmv::via_spc5(&spc5, &x, &ctx).output),
            ("via_sell", spmv::via_sell(&sell, &x, &ctx).output),
            ("via_csb", spmv::via_csb(&csb, &x, &ctx).output),
        ] {
            prop_assert!(
                via_formats::vec_approx_eq(&out, &expected, 1e-9),
                "{name} diverged from reference at config {}",
                cfg.name()
            );
        }
    }

    #[test]
    fn spma_matches_reference(
        a in arb_csr(32, 80),
        b in arb_csr(32, 80),
        cfg in arb_via_config(),
    ) {
        // Embed both into the common shape.
        let n = a.rows().max(b.rows());
        let embed = |m: &Csr| {
            Csr::from_coo(
                &Coo::from_triplets(n, n, m.iter()).unwrap().into_canonical(),
            )
        };
        let (a, b) = (embed(&a), embed(&b));
        let ctx = SimContext::with_via(cfg);
        let expected = reference::spma(&a, &b).unwrap();
        let base = spma::merge_csr(&a, &b, &ctx);
        prop_assert_eq!(&base.output, &expected);
        let via = spma::via_cam(&a, &b, &ctx);
        prop_assert!(DenseMatrix::from_csr(&via.output)
            .approx_eq(&DenseMatrix::from_csr(&expected), 1e-9));
    }

    #[test]
    fn spmm_matches_reference(
        a in arb_csr(20, 60),
        b in arb_csr(20, 60),
        cfg in arb_via_config(),
    ) {
        let n = a.cols().max(b.rows());
        let embed = |m: &Csr| {
            Csr::from_coo(
                &Coo::from_triplets(n, n, m.iter()).unwrap().into_canonical(),
            )
        };
        let (a, b) = (embed(&a), embed(&b));
        let bc = b.to_csc();
        let ctx = SimContext::with_via(cfg);
        let expected = reference::spmm(&a, &bc).unwrap();
        let base = spmm::inner_product(&a, &bc, &ctx);
        prop_assert_eq!(&base.output, &expected);
        let gus = spmm::gustavson(&a, &b, &ctx);
        prop_assert!(DenseMatrix::from_csr(&gus.output)
            .approx_eq(&DenseMatrix::from_csr(&expected), 1e-9));
        let via = spmm::via_cam(&a, &bc, &ctx);
        prop_assert!(DenseMatrix::from_csr(&via.output)
            .approx_eq(&DenseMatrix::from_csr(&expected), 1e-9));
    }

    #[test]
    fn histogram_matches_reference(
        keys in proptest::collection::vec(0u32..300, 0..400),
        cfg in arb_via_config(),
    ) {
        let ctx = SimContext::with_via(cfg);
        let expected = reference::histogram(&keys, 300);
        prop_assert_eq!(histogram::scalar(&keys, 300, &ctx).output, expected.clone());
        prop_assert_eq!(histogram::vector_cd(&keys, 300, &ctx).output, expected.clone());
        prop_assert_eq!(histogram::via(&keys, 300, &ctx).output, expected);
    }

    #[test]
    fn stencil_matches_reference(
        w in 4usize..24,
        h in 4usize..16,
        seed in 0u64..1000,
    ) {
        let ctx = SimContext::default();
        let image: Vec<f64> = via_formats::gen::dense_vector(w * h, seed);
        let filter = stencil::gaussian4();
        let expected = reference::convolve2d(&image, w, h, &filter, 4);
        for out in [
            stencil::scalar(&image, w, h, &filter, &ctx).output,
            stencil::vector(&image, w, h, &filter, &ctx).output,
            stencil::via(&image, w, h, &filter, &ctx).output,
        ] {
            prop_assert!(via_formats::vec_approx_eq(&out, &expected, 1e-9));
        }
    }

    #[test]
    fn via_runs_are_deterministic(a in arb_csr(24, 60)) {
        let ctx = SimContext::default();
        let x = xvec(a.cols());
        let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
        let r1 = spmv::via_csb(&csb, &x, &ctx);
        let r2 = spmv::via_csb(&csb, &x, &ctx);
        prop_assert_eq!(r1.stats, r2.stats);
        prop_assert_eq!(r1.sspm_events, r2.sspm_events);
    }
}

//! Randomized tests: every simulated kernel — baseline or VIA, at any SSPM
//! configuration — must compute exactly what the golden models compute, for
//! arbitrary matrices. Cases are deterministic seeded draws (via-rng), so
//! failures name a reproducible case index.

use via_core::ViaConfig;
use via_formats::{reference, Coo, Csb, Csr, DenseMatrix, SellCSigma, Spc5};
use via_kernels::{histogram, spma, spmm, spmv, stencil, SimContext};
use via_rng::{cases, StdRng};

fn arb_csr(rng: &mut StdRng, max_dim: usize, max_nnz: usize) -> Csr {
    let n = rng.random_range(2..=max_dim);
    let nnz = rng.random_range(1..=max_nnz);
    let entries: Vec<(usize, usize, f64)> = (0..nnz)
        .map(|_| {
            (
                rng.random_range(0..n),
                rng.random_range(0..n),
                rng.random_range(-50i32..50) as f64 / 8.0 + 0.062_5,
            )
        })
        .collect();
    Csr::from_coo(
        &Coo::from_triplets(n, n, entries)
            .expect("in bounds")
            .into_canonical(),
    )
}

fn arb_via_config(rng: &mut StdRng) -> ViaConfig {
    match rng.random_range(0u32..3) {
        0 => ViaConfig::new(4, 2),
        1 => ViaConfig::new(8, 4),
        _ => ViaConfig::new(16, 2),
    }
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

#[test]
fn every_spmv_variant_matches_reference() {
    cases(24, 0xA1, |i, rng| {
        let a = arb_csr(rng, 40, 120);
        let cfg = arb_via_config(rng);
        let ctx = SimContext::with_via(cfg);
        let x = xvec(a.cols());
        let expected = reference::spmv(&a, &x);
        let vl = ctx.vl();
        let csb = Csb::from_csr(&a, cfg.csb_block_size()).unwrap();
        let spc5 = Spc5::from_csr(&a, vl).unwrap();
        let sell = SellCSigma::from_csr(&a, vl, vl * 2).unwrap();
        for (name, out) in [
            ("scalar", spmv::scalar_csr(&a, &x, &ctx).output),
            ("csr_vec", spmv::csr_vec(&a, &x, &ctx).output),
            ("spc5", spmv::spc5(&spc5, &x, &ctx).output),
            ("sell", spmv::sell(&sell, &x, &ctx).output),
            ("csb_soft", spmv::csb_software(&csb, &x, &ctx).output),
            (
                "csb_soft_vec",
                spmv::csb_software_vec(&csb, &x, &ctx).output,
            ),
            ("via_csr", spmv::via_csr(&a, &x, &ctx).output),
            ("via_spc5", spmv::via_spc5(&spc5, &x, &ctx).output),
            ("via_sell", spmv::via_sell(&sell, &x, &ctx).output),
            ("via_csb", spmv::via_csb(&csb, &x, &ctx).output),
        ] {
            assert!(
                via_formats::vec_approx_eq(&out, &expected, 1e-9),
                "case {i}: {name} diverged from reference at config {}",
                cfg.name()
            );
        }
    });
}

#[test]
fn spma_matches_reference() {
    cases(24, 0xA2, |i, rng| {
        let a = arb_csr(rng, 32, 80);
        let b = arb_csr(rng, 32, 80);
        let cfg = arb_via_config(rng);
        // Embed both into the common shape.
        let n = a.rows().max(b.rows());
        let embed =
            |m: &Csr| Csr::from_coo(&Coo::from_triplets(n, n, m.iter()).unwrap().into_canonical());
        let (a, b) = (embed(&a), embed(&b));
        let ctx = SimContext::with_via(cfg);
        let expected = reference::spma(&a, &b).unwrap();
        let base = spma::merge_csr(&a, &b, &ctx);
        assert_eq!(&base.output, &expected, "case {i}");
        let via = spma::via_cam(&a, &b, &ctx);
        assert!(
            DenseMatrix::from_csr(&via.output).approx_eq(&DenseMatrix::from_csr(&expected), 1e-9),
            "case {i}"
        );
    });
}

#[test]
fn spmm_matches_reference() {
    cases(24, 0xA3, |i, rng| {
        let a = arb_csr(rng, 20, 60);
        let b = arb_csr(rng, 20, 60);
        let cfg = arb_via_config(rng);
        let n = a.cols().max(b.rows());
        let embed =
            |m: &Csr| Csr::from_coo(&Coo::from_triplets(n, n, m.iter()).unwrap().into_canonical());
        let (a, b) = (embed(&a), embed(&b));
        let bc = b.to_csc();
        let ctx = SimContext::with_via(cfg);
        let expected = reference::spmm(&a, &bc).unwrap();
        let base = spmm::inner_product(&a, &bc, &ctx);
        assert_eq!(&base.output, &expected, "case {i}");
        let gus = spmm::gustavson(&a, &b, &ctx);
        assert!(
            DenseMatrix::from_csr(&gus.output).approx_eq(&DenseMatrix::from_csr(&expected), 1e-9),
            "case {i}"
        );
        let via = spmm::via_cam(&a, &bc, &ctx);
        assert!(
            DenseMatrix::from_csr(&via.output).approx_eq(&DenseMatrix::from_csr(&expected), 1e-9),
            "case {i}"
        );
    });
}

#[test]
fn histogram_matches_reference() {
    cases(24, 0xA4, |i, rng| {
        let n = rng.random_range(0usize..400);
        let keys: Vec<u32> = (0..n).map(|_| rng.random_range(0u32..300)).collect();
        let cfg = arb_via_config(rng);
        let ctx = SimContext::with_via(cfg);
        let expected = reference::histogram(&keys, 300);
        assert_eq!(
            histogram::scalar(&keys, 300, &ctx).output,
            expected,
            "case {i}"
        );
        assert_eq!(
            histogram::vector_cd(&keys, 300, &ctx).output,
            expected,
            "case {i}"
        );
        assert_eq!(
            histogram::via(&keys, 300, &ctx).output,
            expected,
            "case {i}"
        );
    });
}

#[test]
fn stencil_matches_reference() {
    cases(24, 0xA5, |i, rng| {
        let w = rng.random_range(4usize..24);
        let h = rng.random_range(4usize..16);
        let seed = rng.random_range(0u64..1000);
        let ctx = SimContext::default();
        let image: Vec<f64> = via_formats::gen::dense_vector(w * h, seed);
        let filter = stencil::gaussian4();
        let expected = reference::convolve2d(&image, w, h, &filter, 4);
        for out in [
            stencil::scalar(&image, w, h, &filter, &ctx).output,
            stencil::vector(&image, w, h, &filter, &ctx).output,
            stencil::via(&image, w, h, &filter, &ctx).output,
        ] {
            assert!(
                via_formats::vec_approx_eq(&out, &expected, 1e-9),
                "case {i}"
            );
        }
    });
}

#[test]
fn via_runs_are_deterministic() {
    cases(24, 0xA6, |i, rng| {
        let a = arb_csr(rng, 24, 60);
        let ctx = SimContext::default();
        let x = xvec(a.cols());
        let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
        let r1 = spmv::via_csb(&csb, &x, &ctx);
        let r2 = spmv::via_csb(&csb, &x, &ctx);
        assert_eq!(r1.stats, r2.stats, "case {i}");
        assert_eq!(r1.sspm_events, r2.sspm_events, "case {i}");
    });
}

//! Socket/backend equivalence: the one-core socket is the degenerate case
//! of the multi-core machine, so driving any kernel through [`Socket::run`]
//! with one core must be **bit-identical** to the plain single-core run —
//! same output, same [`RunStats`], same stall attribution, same SSPM
//! events, and the same captured verify diagnostics. The shared-LLC path
//! and the per-core allocator base are pure refactorings at N=1; any
//! divergence here means the socket changed what is simulated.
//!
//! Also pins the multi-core guarantees the bake-off relies on: socket
//! cycle counts are deterministic (independent of host threads and run
//! order), and row-partitioned kernels stay correct under every
//! backend × partition-policy combination.

use via_core::BackendKind;
use via_formats::{gen, reference, vec_approx_eq, Csb};
use via_kernels::{
    histogram, spma, spmm, spmspv, spmv, sptrsv, ssr, stencil, symgs, KernelRun, Partition,
    Schedule, SimContext, Socket,
};
use via_rng::StdRng;
use via_sim::verify;

/// Runs `kernel` standalone and through a one-core [`Socket`], asserting
/// every observable — output, stats, stall breakdown, SSPM events, verify
/// diagnostics — is bit-identical.
fn assert_one_core_identical<T: PartialEq + std::fmt::Debug>(
    name: &str,
    kernel: impl Fn(&SimContext) -> KernelRun<T>,
) {
    let ctx = SimContext::default();

    let guard = verify::capture_guard();
    let single = kernel(&ctx);
    let single_reports = verify::drain_captured();
    drop(guard);

    let guard = verify::capture_guard();
    let socket = Socket::new(ctx, 1).run(|_core, core_ctx| kernel(core_ctx));
    let socket_reports = verify::drain_captured();
    drop(guard);

    assert_eq!(socket.runs.len(), 1, "{name}: one core, one run");
    assert_eq!(
        socket.runs[0], single,
        "{name}: one-core socket diverged from the single-core engine"
    );
    assert_eq!(
        socket.makespan(),
        single.cycles(),
        "{name}: makespan must be the single core's cycles"
    );
    assert_eq!(
        socket_reports, single_reports,
        "{name}: verify diagnostics diverged"
    );
}

fn xvec(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

#[test]
fn one_core_socket_is_bit_identical_for_spmv() {
    let a = gen::uniform(96, 96, 0.04, 11);
    let x = xvec(a.cols());
    assert_one_core_identical("spmv::csr_vec", |ctx| spmv::csr_vec(&a, &x, ctx));
    assert_one_core_identical("spmv::via_csr", |ctx| spmv::via_csr(&a, &x, ctx));
    let csb = Csb::from_csr(&a, SimContext::default().via.csb_block_size()).unwrap();
    assert_one_core_identical("spmv::via_csb", |ctx| spmv::via_csb(&csb, &x, ctx));
    assert_one_core_identical("ssr::spmv_csr", |ctx| ssr::spmv_csr(&a, &x, ctx));
}

#[test]
fn one_core_socket_is_bit_identical_for_spma() {
    let a = gen::uniform(96, 96, 0.04, 11);
    let b = gen::uniform(96, 96, 0.04, 12);
    assert_one_core_identical("spma::merge_csr", |ctx| spma::merge_csr(&a, &b, ctx));
    assert_one_core_identical("spma::via_cam", |ctx| spma::via_cam(&a, &b, ctx));
}

#[test]
fn one_core_socket_is_bit_identical_for_spmm() {
    let a = gen::uniform(48, 48, 0.06, 21);
    let b = gen::uniform(48, 48, 0.06, 22);
    let b_csc = b.to_csc();
    assert_one_core_identical("spmm::gustavson", |ctx| spmm::gustavson(&a, &b, ctx));
    assert_one_core_identical("spmm::via_cam", |ctx| spmm::via_cam(&a, &b_csc, ctx));
    assert_one_core_identical("ssr::spmm_gustavson", |ctx| {
        ssr::spmm_gustavson(&a, &b, ctx)
    });
}

#[test]
fn one_core_socket_is_bit_identical_for_spmspv() {
    let a = gen::uniform(96, 96, 0.05, 31).to_csc();
    let x = spmspv::SparseVector::from_pairs((0..12).map(|i| (i * 7 % 96, 1.0 + i as f64)));
    assert_one_core_identical("spmspv::spa_dense", |ctx| spmspv::spa_dense(&a, &x, ctx));
    assert_one_core_identical("spmspv::via_cam", |ctx| spmspv::via_cam(&a, &x, ctx));
}

#[test]
fn one_core_socket_is_bit_identical_for_sptrsv() {
    let l = gen::lower_triangular(96, 0.06, 11);
    let b = gen::dense_vector(96, 12);
    assert_one_core_identical("sptrsv::scalar[levels]", |ctx| {
        sptrsv::scalar_with(&l, &b, ctx, Schedule::Levels)
    });
    assert_one_core_identical("sptrsv::via_sspm[levels]", |ctx| {
        sptrsv::via_sspm_with(&l, &b, ctx, Schedule::Levels, 8)
    });
}

#[test]
fn one_core_socket_is_bit_identical_for_symgs() {
    let a = gen::make_diagonally_dominant(&gen::uniform(96, 96, 0.05, 11));
    let b = gen::dense_vector(96, 12);
    let x0 = gen::dense_vector(96, 13);
    assert_one_core_identical("symgs::scalar", |ctx| symgs::scalar(&a, &b, &x0, ctx));
    assert_one_core_identical("symgs::via_sspm[levels]", |ctx| {
        symgs::via_sspm_with(&a, &b, &x0, ctx, Schedule::Levels, 8)
    });
}

#[test]
fn one_core_socket_is_bit_identical_for_histogram() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    let keys: Vec<u32> = (0..1000).map(|_| rng.random_range(0u32..256)).collect();
    assert_one_core_identical("histogram::vector_cd", |ctx| {
        histogram::vector_cd(&keys, 256, ctx)
    });
    assert_one_core_identical("histogram::via", |ctx| histogram::via(&keys, 256, ctx));
}

#[test]
fn one_core_socket_is_bit_identical_for_stencil() {
    let side = 20;
    let image: Vec<f64> = (0..side * side).map(|i| ((i % 17) as f64) * 0.5).collect();
    let filter = stencil::gaussian4();
    assert_one_core_identical("stencil::vector", |ctx| {
        stencil::vector(&image, side, side, &filter, ctx)
    });
    assert_one_core_identical("stencil::via", |ctx| {
        stencil::via(&image, side, side, &filter, ctx)
    });
}

/// Multi-core cycle counts depend only on the inputs — not on host
/// threading, not on other sockets having run first. This is what lets the
/// bench layer fan socket sweeps across `parallel_map` without perturbing
/// the recorded numbers.
#[test]
fn two_core_socket_cycles_are_deterministic_across_host_threads() {
    let a = gen::uniform(128, 128, 0.05, 17);
    let x = xvec(a.cols());
    let run_once = move || {
        let socket = Socket::new(SimContext::default(), 2);
        let run = socket.spmv(&a, &x, BackendKind::Via, Partition::NnzBalanced);
        (run.core_cycles(), run.makespan())
    };
    let reference = run_once();

    // Same thread, repeated (fresh shared LLC per run).
    assert_eq!(run_once(), reference);

    // Concurrent host threads, each running its own socket.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let f = run_once.clone();
            std::thread::spawn(f)
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("no panic"), reference);
    }
}

/// Row-partitioned kernels stay correct for every backend × policy pair,
/// including row counts that do not divide evenly across cores.
#[test]
fn partitioned_kernels_match_scalar_references_for_all_backends() {
    let a = gen::uniform(67, 67, 0.07, 29);
    let x = xvec(a.cols());
    let expect_y = reference::spmv(&a, &x);
    let b = gen::uniform(67, 67, 0.05, 30);
    let expect_c = reference::spmm_gustavson(&a, &b).unwrap();
    for cores in [2usize, 3, 5] {
        let socket = Socket::new(SimContext::default(), cores);
        for backend in BackendKind::ALL {
            for policy in [Partition::Static, Partition::NnzBalanced] {
                let y = socket.spmv(&a, &x, backend, policy).concat_output();
                assert!(
                    vec_approx_eq(&y, &expect_y, 1e-9),
                    "spmv {}c {} {:?}",
                    cores,
                    backend.name(),
                    policy
                );
                let c = socket.spmm(&a, &b, backend, policy).concat_output();
                assert_eq!(c.row_ptr(), expect_c.row_ptr());
                assert_eq!(c.col_idx(), expect_c.col_idx());
                assert!(
                    vec_approx_eq(c.data(), expect_c.data(), 1e-9),
                    "spmm {}c {} {:?}",
                    cores,
                    backend.name(),
                    policy
                );
            }
        }
    }
}

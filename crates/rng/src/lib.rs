//! A small, deterministic, dependency-free pseudo-random number generator.
//!
//! The workspace previously depended on the external `rand` crate for suite
//! generation and randomized tests, which made `cargo build` fail in
//! hermetic/offline environments where the registry is unreachable. This
//! crate replaces it with the standard combination of:
//!
//! * **SplitMix64** — seed expansion (one `u64` seed → a full 256-bit
//!   state, guaranteed non-zero), and
//! * **xoshiro256\*\*** — the main generator (Blackman & Vigna), which
//!   passes BigCrush and is the same algorithm family `rand`'s `SmallRng`
//!   uses.
//!
//! Everything is deterministic in the seed and stable across platforms and
//! compiler versions: the generated experiment suites are part of the
//! reproduction's fixtures, so the byte-for-byte stream matters.

#![warn(missing_docs)]

/// The workspace-standard deterministic generator (xoshiro256\*\*, seeded
/// via SplitMix64). The name mirrors `rand::rngs::StdRng` so call sites
/// read the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence; also usable standalone for cheap
/// stateless hashing of seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so
    /// nearby seeds still produce uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output (xoshiro256\*\* scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of a primitive type ([`Sample`]).
    #[inline]
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` ([`SampleRange`] covers the
    /// integer and float `Range`/`RangeInclusive` types the workspace
    /// uses).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone keeps the multiply-shift exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Runs `n` deterministic randomized test cases: each case gets its own
/// generator derived from `seed` and the case index, so a failure report
/// of "case i" is reproducible in isolation. The replacement for the
/// external `proptest` dependency in this workspace's property tests.
pub fn cases(n: u64, seed: u64, mut f: impl FnMut(u64, &mut StdRng)) {
    for i in 0..n {
        let mut state = seed;
        let base = splitmix64(&mut state) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(base);
        f(i, &mut rng);
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        rng.unit_f64()
    }
}

/// Range types [`StdRng::random_range`] accepts.
pub trait SampleRange {
    /// The element type the range yields.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.unit_f64() * (end - start)
    }
}

impl SampleRange for std::ops::Range<i32> {
    type Output = i32;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256** from the canonical all-state-words-known start.
        // Seeded state via SplitMix64(0): the first four outputs of
        // SplitMix64 from state 0 are fixed constants; spot-check the
        // pipeline end-to-end against values computed by the reference C
        // implementations.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(5u32..=5);
            assert_eq!(b, 5);
            let c = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&c));
            let d = rng.random_range(-10i32..-3);
            assert!((-10..-3).contains(&d));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn random_primitives() {
        let mut rng = StdRng::seed_from_u64(13);
        let _: u64 = rng.random();
        let _: u32 = rng.random();
        let _: bool = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}

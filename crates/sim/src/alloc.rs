//! A flat simulated address space with a bump allocator.
//!
//! The timing model only needs *addresses* (the kernels compute real values
//! in Rust alongside the instruction stream), so allocation is a simple
//! monotonically increasing bump pointer with alignment. Regions are handed
//! out as [`Region`]s that convert element indices to byte addresses.

/// A contiguous allocated region of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    elem_bytes: u64,
    len: usize,
}

impl Region {
    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.elem_bytes * self.len as u64
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn addr_of(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "element {i} out of region of {} elements",
            self.len
        );
        self.base + self.elem_bytes * i as u64
    }

    /// A sub-region of `count` elements starting at element `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn slice(&self, start: usize, count: usize) -> Region {
        assert!(start + count <= self.len, "slice out of region");
        Region {
            base: self.base + self.elem_bytes * start as u64,
            elem_bytes: self.elem_bytes,
            len: count,
        }
    }
}

/// Bump allocator over the simulated flat address space.
///
/// Starts at a non-zero base so address 0 is never valid, which catches
/// uninitialized-address bugs in kernel builders. Multi-core sockets give
/// each core a disjoint base ([`AddressSpace::with_base`]) so per-core
/// working sets never alias in a shared last-level cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    base: u64,
    next: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Default base address of the first allocation.
    pub const BASE: u64 = 0x1_0000;

    /// A fresh address space.
    pub fn new() -> Self {
        Self::with_base(Self::BASE)
    }

    /// A fresh address space whose first allocation lands at `base`
    /// (rounded up to the default base if below it, so address 0 stays
    /// invalid).
    pub fn with_base(base: u64) -> Self {
        let base = base.max(Self::BASE);
        AddressSpace { base, next: base }
    }

    /// The first allocatable address of this space.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Allocates `len` elements of `elem_bytes` each, aligned to `align`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two, or `elem_bytes` is
    /// zero.
    pub fn alloc(&mut self, len: usize, elem_bytes: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(elem_bytes > 0, "element size must be positive");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + elem_bytes * len as u64;
        Region {
            base,
            elem_bytes,
            len,
        }
    }

    /// Allocates `len` 8-byte (f64) elements, cache-line aligned.
    pub fn alloc_f64(&mut self, len: usize) -> Region {
        self.alloc(len, 8, 64)
    }

    /// Allocates `len` 4-byte (u32 index) elements, cache-line aligned.
    pub fn alloc_u32(&mut self, len: usize) -> Region {
        self.alloc(len, 4, 64)
    }

    /// Allocates `len` 8-byte pointer-sized elements, cache-line aligned.
    pub fn alloc_u64(&mut self, len: usize) -> Region {
        self.alloc(len, 8, 64)
    }

    /// Total bytes allocated so far (high-water mark).
    pub fn used_bytes(&self) -> u64 {
        self.next - self.base
    }

    /// Rewinds the bump pointer to this space's base. Regions handed
    /// out before the reset must no longer be used.
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc_f64(10);
        let r2 = a.alloc_u32(7);
        let r1_end = r1.base() + r1.size_bytes();
        assert!(r2.base() >= r1_end);
    }

    #[test]
    fn alignment_is_respected() {
        let mut a = AddressSpace::new();
        let _ = a.alloc(3, 1, 1);
        let r = a.alloc_f64(4);
        assert_eq!(r.base() % 64, 0);
    }

    #[test]
    fn addr_of_indexes_elements() {
        let mut a = AddressSpace::new();
        let r = a.alloc_u32(8);
        assert_eq!(r.addr_of(3), r.base() + 12);
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn addr_of_checks_bounds() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(2);
        let _ = r.addr_of(2);
    }

    #[test]
    fn slice_offsets_correctly() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(16);
        let s = r.slice(4, 8);
        assert_eq!(s.base(), r.addr_of(4));
        assert_eq!(s.len(), 8);
        assert_eq!(s.addr_of(0), r.addr_of(4));
    }

    #[test]
    #[should_panic(expected = "slice out of region")]
    fn slice_checks_bounds() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(4);
        let _ = r.slice(2, 3);
    }

    #[test]
    fn used_bytes_tracks_high_water() {
        let mut a = AddressSpace::new();
        assert_eq!(a.used_bytes(), 0);
        a.alloc_f64(8);
        assert!(a.used_bytes() >= 64);
    }

    #[test]
    fn base_is_nonzero() {
        let mut a = AddressSpace::new();
        let r = a.alloc_f64(1);
        assert!(r.base() >= AddressSpace::BASE);
    }

    #[test]
    fn with_base_offsets_allocations() {
        let mut a = AddressSpace::with_base(1 << 32);
        let r = a.alloc_f64(4);
        assert_eq!(r.base(), 1 << 32);
        assert_eq!(a.used_bytes(), 32);
        a.reset();
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.alloc_f64(1).base(), 1 << 32);
    }

    #[test]
    fn with_base_clamps_to_default_minimum() {
        // Address 0 must stay invalid regardless of the requested base.
        let a = AddressSpace::with_base(0);
        assert_eq!(a.base(), AddressSpace::BASE);
    }

    #[test]
    fn default_base_matches_new() {
        assert_eq!(AddressSpace::new(), AddressSpace::with_base(0));
        assert_eq!(AddressSpace::new().base(), AddressSpace::BASE);
    }
}

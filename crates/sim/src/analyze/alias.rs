//! Gather/scatter must-alias analysis (VIA103): the static sharpening of
//! the dynamic VIA008 window check.
//!
//! The runtime [`Verifier`](crate::verify::Verifier) keeps only the last
//! `scatter_window` (default 32) scatters and compares at *line*
//! granularity, so it reports may-conflicts and forgets old writers. With
//! the whole stream in hand this pass does the opposite on both axes:
//!
//! * overlap is **byte-exact** — a gather element `[a, a + elem_bytes)`
//!   must intersect a scatter element's written interval, so every report
//!   is a must-alias, not a shared-cache-line coincidence;
//! * the window is configurable and wide (default 65 536 scatters),
//!   bounded only to keep the pass linear on adversarial streams.
//!
//! The ordering-evidence predicate is the same one VIA008 trusts: a
//! conflict is suppressed when any gather source register was (re)defined
//! at or after the scatter (the address computation observed the scatter's
//! position in program order), when gather and scatter share a source
//! register, or when a `Fence` intervenes. Everything that survives is a
//! read that byte-overlaps an earlier write with *no* ordering evidence —
//! exactly what the engine must dynamically serialize to stay correct.
//!
//! Candidate lookup is indexed by cache line with a small per-line cap
//! (`LINE_CANDIDATES`); the cap (and the window) can drop candidates on
//! adversarial streams, which can only *miss* conflicts, never invent
//! them. Each finding carries enough to be independently re-proven by
//! [`confirm_alias`].

use std::collections::HashMap;

use crate::prog::{Inst, Op, Reg};

/// Max remembered scatter candidates per cache line. Overflow drops the
/// oldest candidate on that line (a completeness, never a soundness, cap).
const LINE_CANDIDATES: usize = 8;

/// Line size used for candidate *indexing* only (the conflict test itself
/// is byte-exact). Matches the dynamic verifier's VIA008 granularity.
const LINE: u64 = 64;

/// One proven must-alias conflict: a gather that byte-overlaps an earlier
/// scatter with no ordering evidence between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AliasConflict {
    /// Stream index of the conflicting gather.
    pub gather: u64,
    /// Stream index of the earlier overlapping scatter.
    pub scatter: u64,
    /// One byte address both touch (witness of the overlap).
    pub addr: u64,
}

/// The alias pass result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AliasAnalysis {
    /// One conflict per offending gather (the most recent conflicting
    /// scatter, mirroring VIA008's reporting choice), in stream order.
    pub conflicts: Vec<AliasConflict>,
    /// Scatters dropped by the window/per-line caps (0 means the pass was
    /// exhaustive and an empty `conflicts` is a proof of absence).
    pub dropped_candidates: u64,
}

struct ScatterRec {
    /// Monotonic id; doubles as the eviction clock.
    id: u64,
    index: u64,
    srcs: Vec<Reg>,
    addrs: Vec<u64>,
    elem_bytes: u32,
}

fn line_range(addr: u64, bytes: u32) -> std::ops::RangeInclusive<u64> {
    let first = addr / LINE;
    let last = (addr + bytes.max(1) as u64 - 1) / LINE;
    first..=last
}

fn overlap_witness(a: u64, a_bytes: u32, b: u64, b_bytes: u32) -> Option<u64> {
    let lo = a.max(b);
    let hi = (a + a_bytes as u64).min(b + b_bytes as u64);
    (lo < hi).then_some(lo)
}

/// Runs the whole-stream must-alias pass. `window` bounds how many past
/// scatters stay candidates (see the module docs).
pub fn must_alias_conflicts(insts: &[Inst], window: usize) -> AliasAnalysis {
    let window = window.max(1);
    let mut out = AliasAnalysis::default();
    // All retained scatters, oldest first; ids below `oldest_live` are
    // evicted lazily from the per-line index.
    let mut pending: Vec<ScatterRec> = Vec::new();
    let mut next_id = 0u64;
    let mut oldest_live = 0u64;
    // cache line -> ids of scatters that wrote into it (newest last).
    let mut by_line: HashMap<u64, Vec<u64>> = HashMap::new();
    // reg -> 0-based index of its latest definition.
    let mut last_def: HashMap<Reg, u64> = HashMap::new();

    for (i, inst) in insts.iter().enumerate() {
        let i = i as u64;
        match &inst.op {
            Op::Gather { addrs, elem_bytes } => {
                // Same evidence predicate as the dynamic VIA008 check: the
                // gather's addresses were computed after the scatter, or
                // from the same registers.
                let ordered_after = |s: &ScatterRec| {
                    inst.srcs
                        .as_slice()
                        .iter()
                        .any(|r| last_def.get(r).is_some_and(|&def| def >= s.index))
                        || inst.srcs.as_slice().iter().any(|r| s.srcs.contains(r))
                };
                let mut best: Option<AliasConflict> = None;
                for &a in addrs.as_slice() {
                    for l in line_range(a, *elem_bytes) {
                        let Some(ids) = by_line.get(&l) else { continue };
                        for &id in ids.iter().rev() {
                            if id < oldest_live {
                                continue;
                            }
                            if best.is_some_and(|b| {
                                pending[(id - oldest_live) as usize].index <= b.scatter
                            }) {
                                break; // only older candidates remain on this line
                            }
                            let s = &pending[(id - oldest_live) as usize];
                            let hit = s
                                .addrs
                                .iter()
                                .find_map(|&sa| overlap_witness(a, *elem_bytes, sa, s.elem_bytes));
                            if let Some(addr) = hit {
                                if !ordered_after(s) {
                                    best = Some(AliasConflict {
                                        gather: i,
                                        scatter: s.index,
                                        addr,
                                    });
                                }
                            }
                        }
                    }
                }
                if let Some(c) = best {
                    out.conflicts.push(c);
                }
            }
            Op::Scatter { addrs, elem_bytes } if !addrs.is_empty() => {
                if pending.len() >= window {
                    pending.remove(0);
                    oldest_live += 1;
                    out.dropped_candidates += 1;
                }
                let id = next_id;
                next_id += 1;
                for &a in addrs.as_slice() {
                    for l in line_range(a, *elem_bytes) {
                        let ids = by_line.entry(l).or_default();
                        ids.retain(|&old| old >= oldest_live);
                        if ids.last() == Some(&id) {
                            continue;
                        }
                        if ids.len() >= LINE_CANDIDATES {
                            ids.remove(0);
                            out.dropped_candidates += 1;
                        }
                        ids.push(id);
                    }
                }
                pending.push(ScatterRec {
                    id,
                    index: i,
                    srcs: inst.srcs.as_slice().to_vec(),
                    addrs: addrs.as_slice().to_vec(),
                    elem_bytes: *elem_bytes,
                });
            }
            Op::Fence => {
                oldest_live = next_id;
                pending.clear();
                by_line.clear();
            }
            _ => {}
        }
        debug_assert!(pending.first().map(|s| s.id).unwrap_or(oldest_live) == oldest_live);
        if let Some(dst) = inst.dst {
            last_def.insert(dst, i);
        }
    }
    out
}

/// Brute-force oracle for one [`AliasConflict`]: re-proves byte overlap,
/// the absence of an intervening fence, and the absence of ordering
/// evidence, scanning the raw stream with none of the pass's indexing.
pub fn confirm_alias(insts: &[Inst], finding: &AliasConflict) -> Result<(), String> {
    let gather = insts
        .get(finding.gather as usize)
        .ok_or_else(|| format!("gather index {} out of range", finding.gather))?;
    let scatter = insts
        .get(finding.scatter as usize)
        .ok_or_else(|| format!("scatter index {} out of range", finding.scatter))?;
    if finding.scatter >= finding.gather {
        return Err(format!(
            "scatter #{} does not precede gather #{}",
            finding.scatter, finding.gather
        ));
    }
    let (g_addrs, g_bytes) = match &gather.op {
        Op::Gather { addrs, elem_bytes } => (addrs.as_slice(), *elem_bytes),
        other => {
            return Err(format!(
                "inst #{} is a {}, not a gather",
                finding.gather,
                other.tag()
            ))
        }
    };
    let (s_addrs, s_bytes) = match &scatter.op {
        Op::Scatter { addrs, elem_bytes } => (addrs.as_slice(), *elem_bytes),
        other => {
            return Err(format!(
                "inst #{} is a {}, not a scatter",
                finding.scatter,
                other.tag()
            ))
        }
    };
    let witness_read = g_addrs
        .iter()
        .any(|&g| finding.addr >= g && finding.addr < g + g_bytes as u64);
    let witness_written = s_addrs
        .iter()
        .any(|&s| finding.addr >= s && finding.addr < s + s_bytes as u64);
    if !witness_read || !witness_written {
        return Err(format!(
            "witness byte {:#x} is not touched by both sides",
            finding.addr
        ));
    }
    for between in &insts[finding.scatter as usize + 1..finding.gather as usize] {
        if matches!(between.op, Op::Fence) {
            return Err(format!(
                "fence between scatter #{} and gather #{}: ordered",
                finding.scatter, finding.gather
            ));
        }
    }
    // Recompute last definitions up to (excluding) the gather.
    let mut last_def: HashMap<Reg, u64> = HashMap::new();
    for (j, inst) in insts[..finding.gather as usize].iter().enumerate() {
        if let Some(dst) = inst.dst {
            last_def.insert(dst, j as u64);
        }
    }
    let after = gather
        .srcs
        .as_slice()
        .iter()
        .any(|r| last_def.get(r).is_some_and(|&def| def >= finding.scatter));
    if after {
        return Err(format!(
            "gather #{} has a source defined after scatter #{}: ordered",
            finding.gather, finding.scatter
        ));
    }
    let shared = gather
        .srcs
        .as_slice()
        .iter()
        .any(|r| scatter.srcs.as_slice().contains(r));
    if shared {
        return Err(format!(
            "gather #{} shares a source register with scatter #{}: ordered",
            finding.gather, finding.scatter
        ));
    }
    Ok(())
}

//! The static cycle **lower bound**: a relaxed deterministic replica of the
//! engine's `push_core`, plus standalone resource- and traffic-occupancy
//! terms. Every term is provably `<=` the simulated cycle count for the
//! same `(stream, config)` pair, so `max` over all of them is too.
//!
//! # Why a *replica* instead of a critical-path formula
//!
//! The engine is an interval-style analytical model: fetch width, ROB
//! admission, fences, branch redirects, the in-order commit automaton and
//! the commit-serialized custom-op gate all interact. Re-deriving a closed
//! form that stays sound against that machine is fragile; instead the bound
//! *runs the same automata* with every non-monotone component relaxed to
//! its cheapest possible outcome:
//!
//! * **functional units** (scalar/vector ALUs, load/store ports) are
//!   infinite — the engine's gap-filling [`Calendar`](crate::calendar)
//!   bookings are *not* monotone under earlier ready times (an earlier
//!   request can be pushed to a later gap), so any finite-unit model could
//!   overshoot. Their contention is recovered by the standalone occupancy
//!   terms below, which need no timing at all.
//! * **memory** always hits in L1: a load/store completes at
//!   `ready + l1.latency`, a gather/scatter at
//!   `ready + l1.latency + gather_overhead` — the cheapest completion the
//!   hierarchy can produce.
//! * everything whose relaxed inputs provably yield relaxed outputs is
//!   replicated **exactly**: the fetch/ROB/fence frontier, the branch
//!   predictor (its state depends only on the `(taken, site)` sequence,
//!   never on timing, so the mispredict set is identical), the in-order
//!   width-limited commit automaton, and the custom (FIVU) pool's min-free
//!   model (monotone by sorted-multiset domination).
//!
//! # Standalone occupancy terms
//!
//! With `C` units and `n` booked slots whose minimum effective latency is
//! `lat`, every booking starts at some `s` with `s + lat <= cycles`, and at
//! most `C` bookings share a start cycle, so
//! `cycles >= ceil(n / C) + lat - 1`. The custom-unit term truncates each
//! reservation to `min(occupancy, latency)` so the busy span stays inside
//! `[0, cycles]` even when occupancy exceeds latency.
//!
//! The DRAM term counts cache lines whose **first** touch is a demand read
//! (load or gather): with prefetching off and uniform line sizes, such a
//! touch is a compulsory miss that books `transfer_cycles(line_bytes)` on
//! the single DRAM channel, and the booking ends before the read completes
//! (the gate requires `transfer <= dram_latency`). Lines first touched by a
//! *write* are excluded — stores complete at store-buffer latency, so their
//! DRAM bookings are not bounded by any completion time.

use std::collections::HashSet;

use crate::config::CoreConfig;
use crate::prog::{AluKind, Inst, Op, Reg, VecOpKind};

use super::AnalyzeConfig;

/// The static cycle lower bound and its individual terms (each itself a
/// valid lower bound; `lower_cycles` is their maximum).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticBound {
    /// The final bound: `max` of every term below.
    pub lower_cycles: u64,
    /// The relaxed-replica machine's final `last_commit.max(complete_max)`.
    pub replica_cycles: u64,
    /// Scalar-ALU occupancy (scalar ops + branches over `scalar_alus`).
    pub scalar_term: u64,
    /// Vector-ALU occupancy.
    pub vector_term: u64,
    /// Load-port occupancy (load line pieces + gather elements).
    pub load_term: u64,
    /// Store-port occupancy (store line pieces + scatter elements).
    pub store_term: u64,
    /// Custom (FIVU) unit occupancy, truncated to completion-bounded spans.
    pub custom_term: u64,
    /// DRAM compulsory read-traffic transfer cycles (0 when the config
    /// gate does not hold — see the module docs).
    pub dram_term: u64,
}

impl StaticBound {
    /// `lower_cycles / simulated`, in `[0, 1]` whenever the bound holds;
    /// 1.0 for an empty stream. Higher is tighter.
    pub fn tightness(&self, simulated_cycles: u64) -> f64 {
        if simulated_cycles == 0 {
            return 1.0;
        }
        self.lower_cycles as f64 / simulated_cycles as f64
    }
}

/// Rolling minimum of the effective latencies seen on one unit pool,
/// feeding the `ceil(n/C) + lat - 1` occupancy term.
#[derive(Debug, Clone, Copy)]
struct PoolCount {
    slots: u64,
    min_lat: u64,
}

impl PoolCount {
    fn new() -> Self {
        PoolCount {
            slots: 0,
            min_lat: u64::MAX,
        }
    }

    fn add(&mut self, slots: u64, lat: u64) {
        self.slots += slots;
        self.min_lat = self.min_lat.min(lat);
    }

    fn term(&self, units: u32) -> u64 {
        if self.slots == 0 {
            return 0;
        }
        let units = units.max(1) as u64;
        (self.slots.div_ceil(units) - 1) + self.min_lat
    }
}

/// The relaxed engine replica (see the module docs): same automata as
/// `Engine::push_core`, with infinite calendars and all-L1-hit memory.
struct Replica {
    core: CoreConfig,
    l1_latency: u64,
    ready: Vec<u64>,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    commit_cycle: u64,
    commit_in_cycle: u32,
    last_commit: u64,
    rob_window: Vec<u64>,
    rob_head: usize,
    rob_filled: usize,
    all_complete_max: u64,
    noncustom_complete_max: u64,
    fence_until: u64,
    custom_units: Vec<u64>,
    predictor: Vec<u8>,
}

impl Replica {
    fn new(cfg: &AnalyzeConfig) -> Self {
        let core = cfg.core.clone();
        Replica {
            l1_latency: cfg.mem.l1.latency as u64,
            ready: Vec::new(),
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            commit_cycle: 0,
            commit_in_cycle: 0,
            last_commit: 0,
            rob_window: vec![0; core.rob_size.max(1)],
            rob_head: 0,
            rob_filled: 0,
            all_complete_max: 0,
            noncustom_complete_max: 0,
            fence_until: 0,
            // A custom op on a zero-unit core cannot be simulated at all
            // (the engine panics); model one unit so the analysis of such a
            // stream stays total. The bound is only claimed for runnable
            // (stream, config) pairs.
            custom_units: vec![0; (core.custom_units as usize).max(1)],
            predictor: Vec::new(),
            core,
        }
    }

    fn reg_ready(&self, r: Reg) -> u64 {
        self.ready.get(r as usize).copied().unwrap_or(0)
    }

    fn set_ready(&mut self, r: Reg, t: u64) {
        let idx = r as usize;
        if idx >= self.ready.len() {
            self.ready.resize(idx + 1, 0);
        }
        self.ready[idx] = t;
    }

    /// Mirrors `Engine::acquire_custom` exactly (the min-free model is
    /// monotone: sorted-multiset domination of the pool is preserved when
    /// both sides replace their minimum with a dominated start + occupancy).
    fn acquire_custom(&mut self, t: u64, occupancy: u64) -> u64 {
        let (idx, &free) = self
            .custom_units
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("replica custom pool is never empty");
        let start = t.max(free);
        self.custom_units[idx] = start + occupancy;
        start
    }

    fn push(&mut self, inst: &Inst) {
        // Fetch: width and ROB admission, exactly as the engine.
        let rob_ready = if self.rob_filled == self.core.rob_size {
            self.rob_window[self.rob_head]
        } else {
            0
        };
        let earliest_fetch = rob_ready.max(self.fence_until);
        if self.fetch_cycle < earliest_fetch {
            self.fetch_cycle = earliest_fetch;
            self.fetch_in_cycle = 0;
        }
        if self.fetch_in_cycle >= self.core.fetch_width {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        self.fetch_in_cycle += 1;
        let fetch_t = self.fetch_cycle;

        let mut dep_t = 0u64;
        for &r in inst.srcs.as_slice() {
            dep_t = dep_t.max(self.reg_ready(r));
        }
        let ready_t = fetch_t.max(dep_t);

        // Execute, relaxed: no unit waits, all-hit memory.
        let complete = match &inst.op {
            Op::Scalar { kind } => {
                let lat = match kind {
                    AluKind::Int => self.core.scalar_latency,
                    AluKind::FpAdd | AluKind::FpMul => self.core.vec_alu_latency,
                    AluKind::FpFma => self.core.vec_fma_latency,
                } as u64;
                ready_t + lat
            }
            Op::Vec { kind } => {
                let lat = match kind {
                    VecOpKind::Add | VecOpKind::Mul => self.core.vec_alu_latency,
                    VecOpKind::Fma => self.core.vec_fma_latency,
                    VecOpKind::Reduce => self.core.vec_reduce_latency,
                    VecOpKind::Permute | VecOpKind::Blend => self.core.vec_permute_latency,
                    VecOpKind::Compare => self.core.vec_alu_latency,
                    VecOpKind::ConflictDetect => self.core.vec_conflict_latency,
                } as u64;
                ready_t + lat
            }
            Op::Load { .. } | Op::Store { .. } => ready_t + self.l1_latency,
            Op::Gather { addrs, .. } | Op::Scatter { addrs, .. } => {
                let mem = if addrs.is_empty() { 0 } else { self.l1_latency };
                ready_t + mem + self.core.gather_overhead as u64
            }
            Op::Custom {
                occupancy,
                latency,
                at_commit,
            } => {
                let gate = if *at_commit {
                    ready_t.max(self.noncustom_complete_max)
                } else {
                    ready_t
                };
                let occ = (*occupancy).max(1) as u64;
                let start = self.acquire_custom(gate, occ);
                start + (*latency).max(1) as u64
            }
            Op::Branch { taken, site } => {
                // Identical predictor: its state depends only on the
                // (taken, site) sequence, so the mispredict set matches the
                // engine's bit for bit.
                let idx = *site as usize;
                if idx >= self.predictor.len() {
                    self.predictor.resize(idx + 1, 2);
                }
                let counter = &mut self.predictor[idx];
                let predicted = *counter >= 2;
                if *taken {
                    *counter = (*counter + 1).min(3);
                } else {
                    *counter = counter.saturating_sub(1);
                }
                let resolve = ready_t + self.core.scalar_latency as u64;
                if predicted != *taken {
                    self.fence_until = self
                        .fence_until
                        .max(resolve + self.core.mispredict_penalty as u64);
                }
                resolve
            }
            Op::Delay { cycles } => ready_t + *cycles as u64,
            Op::Fence => {
                self.fence_until = self.all_complete_max.max(fetch_t);
                fetch_t.max(self.all_complete_max)
            }
        };

        if let Some(dst) = inst.dst {
            self.set_ready(dst, complete);
        }
        self.all_complete_max = self.all_complete_max.max(complete);
        if !matches!(inst.op, Op::Custom { .. }) {
            self.noncustom_complete_max = self.noncustom_complete_max.max(complete);
        }

        // Commit: in order, width-limited, exactly as the engine.
        let mut commit_t = complete.max(self.last_commit);
        if commit_t > self.commit_cycle {
            self.commit_cycle = commit_t;
            self.commit_in_cycle = 0;
        }
        if self.commit_in_cycle >= self.core.commit_width {
            self.commit_cycle += 1;
            self.commit_in_cycle = 0;
            commit_t = self.commit_cycle;
        }
        self.commit_in_cycle += 1;
        commit_t = commit_t.max(self.commit_cycle);
        self.last_commit = commit_t;
        self.rob_window[self.rob_head] = commit_t;
        self.rob_head += 1;
        if self.rob_head == self.core.rob_size {
            self.rob_head = 0;
        }
        if self.rob_filled < self.core.rob_size {
            self.rob_filled += 1;
        }
    }

    fn cycles(&self) -> u64 {
        self.last_commit.max(self.all_complete_max)
    }
}

/// Number of cache lines a unit-stride access spans (the engine's
/// `access_span` piece walk).
fn line_pieces(addr: u64, bytes: u32, line: u64) -> u64 {
    let first = addr & !(line - 1);
    let last = (addr + bytes.max(1) as u64 - 1) & !(line - 1);
    (last - first) / line + 1
}

/// Computes the static cycle lower bound for a stream under a machine
/// configuration. See the module docs for the soundness argument of each
/// term.
pub fn static_bound(insts: &[Inst], cfg: &AnalyzeConfig) -> StaticBound {
    let mut replica = Replica::new(cfg);
    let mut scalar = PoolCount::new();
    let mut vector = PoolCount::new();
    let mut load = PoolCount::new();
    let mut store = PoolCount::new();
    let mut custom_busy = 0u64;
    let line = cfg.mem.l1.line_bytes as u64;
    let l1_lat = cfg.mem.l1.latency as u64;
    let mut seen_lines: HashSet<u64> = HashSet::new();
    let mut demand_read_lines = 0u64;
    let mut first_touch = |line_id: u64, is_read: bool, count: &mut u64| {
        if seen_lines.insert(line_id) && is_read {
            *count += 1;
        }
    };

    for inst in insts {
        match &inst.op {
            Op::Scalar { kind } => {
                let lat = match kind {
                    AluKind::Int => cfg.core.scalar_latency,
                    AluKind::FpAdd | AluKind::FpMul => cfg.core.vec_alu_latency,
                    AluKind::FpFma => cfg.core.vec_fma_latency,
                } as u64;
                scalar.add(1, lat);
            }
            Op::Branch { .. } => scalar.add(1, cfg.core.scalar_latency as u64),
            Op::Vec { kind } => {
                let lat = match kind {
                    VecOpKind::Add | VecOpKind::Mul => cfg.core.vec_alu_latency,
                    VecOpKind::Fma => cfg.core.vec_fma_latency,
                    VecOpKind::Reduce => cfg.core.vec_reduce_latency,
                    VecOpKind::Permute | VecOpKind::Blend => cfg.core.vec_permute_latency,
                    VecOpKind::Compare => cfg.core.vec_alu_latency,
                    VecOpKind::ConflictDetect => cfg.core.vec_conflict_latency,
                } as u64;
                vector.add(1, lat);
            }
            Op::Load { addr, bytes } => {
                let pieces = line_pieces(*addr, *bytes, line);
                load.add(pieces, l1_lat);
                for p in 0..pieces {
                    first_touch(
                        (*addr >> line.trailing_zeros()) + p,
                        true,
                        &mut demand_read_lines,
                    );
                }
            }
            Op::Store { addr, bytes } => {
                let pieces = line_pieces(*addr, *bytes, line);
                store.add(pieces, l1_lat);
                for p in 0..pieces {
                    first_touch(
                        (*addr >> line.trailing_zeros()) + p,
                        false,
                        &mut demand_read_lines,
                    );
                }
            }
            Op::Gather { addrs, .. } => {
                load.add(addrs.len() as u64, l1_lat);
                for &a in addrs.as_slice() {
                    first_touch(a / line, true, &mut demand_read_lines);
                }
            }
            Op::Scatter { addrs, .. } => {
                store.add(addrs.len() as u64, l1_lat);
                for &a in addrs.as_slice() {
                    first_touch(a / line, false, &mut demand_read_lines);
                }
            }
            Op::Custom {
                occupancy, latency, ..
            } => {
                custom_busy += ((*occupancy).max(1) as u64).min((*latency).max(1) as u64);
            }
            Op::Delay { .. } | Op::Fence => {}
        }
        replica.push(inst);
    }

    let transfer = {
        let bytes = cfg.mem.l3.line_bytes as f64;
        ((bytes / cfg.mem.dram_bytes_per_cycle).ceil() as u64).max(1)
    };
    let dram_gate = cfg.mem.prefetch_degree == 0
        && cfg.mem.l1.line_bytes == cfg.mem.l2.line_bytes
        && cfg.mem.l2.line_bytes == cfg.mem.l3.line_bytes
        && transfer <= cfg.mem.dram_latency as u64;
    let dram_term = if dram_gate {
        demand_read_lines * transfer
    } else {
        0
    };

    let custom_term = if custom_busy == 0 {
        0
    } else {
        custom_busy.div_ceil(cfg.core.custom_units.max(1) as u64)
    };

    let mut bound = StaticBound {
        replica_cycles: replica.cycles(),
        scalar_term: scalar.term(cfg.core.scalar_alus),
        vector_term: vector.term(cfg.core.vector_alus),
        load_term: load.term(cfg.core.load_ports),
        store_term: store.term(cfg.core.store_ports),
        custom_term,
        dram_term,
        lower_cycles: 0,
    };
    bound.lower_cycles = bound
        .replica_cycles
        .max(bound.scalar_term)
        .max(bound.vector_term)
        .max(bound.load_term)
        .max(bound.store_term)
        .max(bound.custom_term)
        .max(bound.dram_term);
    bound
}

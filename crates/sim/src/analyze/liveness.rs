//! Register and memory liveness over a finished stream: provably dead
//! register writes (VIA101) and provably dead stores (VIA102).
//!
//! Both passes report only *continuation-sound* facts — facts that stay
//! true no matter what instructions a longer run would have appended:
//!
//! * a register write is dead only if the register is **redefined** later
//!   with no intervening read. A register merely unread at stream end is
//!   *not* dead (a continuation could read it); those are tallied
//!   separately as `unread_at_end`.
//! * a store is dead only if every stored byte is **overwritten** before
//!   any load/gather observes it. Bytes still live at stream end are not
//!   dead — simulated memory outlives the stream.
//!
//! Reads are processed before the same instruction's destination write,
//! mirroring the engine's operand capture (`r0 = f(r0)` reads the previous
//! definition). Each pass has a brute-force oracle (`confirm_*`) used by
//! the cross-validation layer to re-prove every finding independently.

use std::collections::HashMap;

use crate::prog::{Inst, Op, Reg};

/// A provably dead register write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWrite {
    /// Stream index of the dead defining instruction.
    pub index: u64,
    /// The register whose value is never read.
    pub reg: Reg,
    /// Stream index of the redefinition that kills it.
    pub overwritten_at: u64,
}

/// The register-liveness pass result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegLiveness {
    /// Every provably dead write, in stream order of the dead definition's
    /// killer (the order findings are proven).
    pub dead_writes: Vec<DeadWrite>,
    /// Registers whose last definition was never read by stream end
    /// (*not* dead — a continuation could read them).
    pub unread_at_end: u64,
}

/// Forward scan for dead register writes: for each register track its last
/// definition and whether any read has observed it since.
pub fn dead_register_writes(insts: &[Inst]) -> RegLiveness {
    // reg -> (defining index, read since that definition)
    let mut last_def: HashMap<Reg, (u64, bool)> = HashMap::new();
    let mut out = RegLiveness::default();
    for (i, inst) in insts.iter().enumerate() {
        let i = i as u64;
        for &r in inst.srcs.as_slice() {
            if let Some(entry) = last_def.get_mut(&r) {
                entry.1 = true;
            }
        }
        if let Some(dst) = inst.dst {
            if let Some(&(def_at, read)) = last_def.get(&dst) {
                if !read {
                    out.dead_writes.push(DeadWrite {
                        index: def_at,
                        reg: dst,
                        overwritten_at: i,
                    });
                }
            }
            last_def.insert(dst, (i, false));
        }
    }
    out.unread_at_end = last_def.values().filter(|&&(_, read)| !read).count() as u64;
    out
}

/// Brute-force oracle for one [`DeadWrite`]: rescans the stream from the
/// definition and re-proves the claim with none of the pass's bookkeeping.
pub fn confirm_dead_write(insts: &[Inst], finding: &DeadWrite) -> Result<(), String> {
    let def = insts
        .get(finding.index as usize)
        .ok_or_else(|| format!("dead-write index {} out of range", finding.index))?;
    if def.dst != Some(finding.reg) {
        return Err(format!(
            "inst #{} does not define r{}",
            finding.index, finding.reg
        ));
    }
    for (j, inst) in insts.iter().enumerate().skip(finding.index as usize + 1) {
        if inst.srcs.as_slice().contains(&finding.reg) {
            return Err(format!(
                "r{} written at #{} is read at #{j}: not dead",
                finding.reg, finding.index
            ));
        }
        if inst.dst == Some(finding.reg) {
            return if j as u64 == finding.overwritten_at {
                Ok(())
            } else {
                Err(format!(
                    "r{} is first redefined at #{j}, not #{}",
                    finding.reg, finding.overwritten_at
                ))
            };
        }
    }
    Err(format!(
        "r{} written at #{} is never redefined: not provably dead",
        finding.reg, finding.index
    ))
}

/// A provably dead store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadStore {
    /// Stream index of the dead store.
    pub index: u64,
    /// Bytes it wrote (all overwritten unobserved).
    pub bytes: u32,
    /// Stream index of the write that overwrote its last live byte.
    pub killed_at: u64,
}

/// The memory-liveness pass result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreLiveness {
    /// Every provably dead store, in kill order.
    pub dead_stores: Vec<DeadStore>,
    /// Total bytes across the dead stores.
    pub dead_bytes: u64,
}

/// Per-candidate tracking state for the dead-store pass.
struct StoreRec {
    index: u64,
    bytes: u32,
    /// Stored bytes not yet read or overwritten.
    remaining: u32,
    /// Whether any read observed any of its bytes.
    observed: bool,
}

/// Byte ranges an instruction reads from / writes to simulated memory.
/// Reads are deliberately generous (a gather element is treated as reading
/// its full `elem_bytes`, though the engine only times the line of `addr`)
/// — a wider read set can only *suppress* findings, never fabricate them.
/// VIA custom ops move data through the functional SSPM model and never
/// touch simulated memory, so they contribute nothing here.
fn for_each_read(inst: &Inst, mut f: impl FnMut(u64, u32)) {
    match &inst.op {
        Op::Load { addr, bytes } => f(*addr, *bytes),
        Op::Gather { addrs, elem_bytes } => {
            for &a in addrs.as_slice() {
                f(a, *elem_bytes);
            }
        }
        _ => {}
    }
}

fn for_each_write(inst: &Inst, mut f: impl FnMut(u64, u32)) {
    match &inst.op {
        Op::Store { addr, bytes } => f(*addr, *bytes),
        Op::Scatter { addrs, elem_bytes } => {
            for &a in addrs.as_slice() {
                f(a, *elem_bytes);
            }
        }
        _ => {}
    }
}

/// Byte-exact forward scan for dead stores. Candidates are unit-stride
/// stores (scatters act as overwriters and loads/gathers as observers, but
/// are not themselves candidates).
pub fn dead_stores(insts: &[Inst]) -> StoreLiveness {
    let mut out = StoreLiveness::default();
    let mut stores: Vec<StoreRec> = Vec::new();
    // byte address -> index into `stores` of the candidate that last wrote
    // it (present only while the byte is unread and unoverwritten).
    let mut owner: HashMap<u64, u32> = HashMap::new();
    for (i, inst) in insts.iter().enumerate() {
        let i = i as u64;
        for_each_read(inst, |addr, bytes| {
            for b in addr..addr.saturating_add(bytes as u64) {
                if let Some(id) = owner.remove(&b) {
                    stores[id as usize].observed = true;
                }
            }
        });
        let candidate = matches!(&inst.op, Op::Store { bytes, .. } if *bytes > 0);
        let new_id = if candidate {
            stores.push(StoreRec {
                index: i,
                bytes: 0,
                remaining: 0,
                observed: false,
            });
            Some((stores.len() - 1) as u32)
        } else {
            None
        };
        for_each_write(inst, |addr, bytes| {
            for b in addr..addr.saturating_add(bytes as u64) {
                let prev = match new_id {
                    Some(id) => owner.insert(b, id),
                    None => owner.remove(&b),
                };
                if let Some(pid) = prev {
                    if Some(pid) != new_id {
                        let rec = &mut stores[pid as usize];
                        rec.remaining -= 1;
                        if rec.remaining == 0 && !rec.observed {
                            out.dead_stores.push(DeadStore {
                                index: rec.index,
                                bytes: rec.bytes,
                                killed_at: i,
                            });
                            out.dead_bytes += rec.bytes as u64;
                        }
                    }
                }
                if let Some(id) = new_id {
                    let rec = &mut stores[id as usize];
                    if prev != Some(id) {
                        rec.remaining += 1;
                    }
                    rec.bytes += 1;
                }
            }
        });
    }
    out
}

/// Brute-force oracle for one [`DeadStore`]: replays the byte interval
/// forward and re-proves that every byte is overwritten unobserved.
pub fn confirm_dead_store(insts: &[Inst], finding: &DeadStore) -> Result<(), String> {
    let inst = insts
        .get(finding.index as usize)
        .ok_or_else(|| format!("dead-store index {} out of range", finding.index))?;
    let (addr, bytes) = match &inst.op {
        Op::Store { addr, bytes } => (*addr, *bytes),
        other => {
            return Err(format!(
                "inst #{} is a {}, not a store",
                finding.index,
                other.tag()
            ))
        }
    };
    if bytes != finding.bytes {
        return Err(format!(
            "store #{} writes {bytes} bytes, finding claims {}",
            finding.index, finding.bytes
        ));
    }
    let mut remaining: Vec<u64> = (addr..addr + bytes as u64).collect();
    for (j, later) in insts.iter().enumerate().skip(finding.index as usize + 1) {
        let mut observed = false;
        for_each_read(later, |a, n| {
            if remaining.iter().any(|&b| b >= a && b < a + n as u64) {
                observed = true;
            }
        });
        if observed {
            return Err(format!(
                "store #{} is read at #{j} before being fully overwritten",
                finding.index
            ));
        }
        for_each_write(later, |a, n| {
            remaining.retain(|&b| b < a || b >= a + n as u64);
        });
        if remaining.is_empty() {
            return if j as u64 == finding.killed_at {
                Ok(())
            } else {
                Err(format!(
                    "store #{} is fully overwritten at #{j}, not #{}",
                    finding.index, finding.killed_at
                ))
            };
        }
    }
    Err(format!(
        "store #{} still has {} live bytes at stream end: not dead",
        finding.index,
        remaining.len()
    ))
}

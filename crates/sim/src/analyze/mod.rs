//! `via-analyze`: whole-stream static analysis over [`CompiledStream`].
//!
//! Everything the dynamic engine discovers by simulating is, for a
//! *recorded* stream, decidable up front: the stream is a flat array of
//! fully concrete instructions (every address and register id resolved at
//! emission), so forward abstract interpretation degenerates into exact
//! dataflow. The passes:
//!
//! | pass | module | emits |
//! |------|--------|-------|
//! | register liveness / dead writes  | [`liveness`] | `analysis[VIA101]` |
//! | store liveness (byte-exact)      | [`liveness`] | `analysis[VIA102]` |
//! | gather/scatter must-alias        | [`alias`]    | `analysis[VIA103]` |
//! | SSPM reuse distance / working set| [`reuse`]    | report only |
//! | CAM index-table occupancy bound  | (here)       | `analysis[VIA104]` |
//! | static cycle lower bound         | [`bound`]    | report only |
//!
//! Diagnostics ride the existing [`DiagCode`] machinery at the new
//! [`Severity::Analysis`](crate::verify::Severity) level — they are
//! findings about *quality*, never correctness gates. The machine-readable
//! [`AnalysisReport`] is keyed by `(stream_hash, config hash)` and memoized
//! in an [`AnalysisCache`] exactly like cycle results memoize in the sweep
//! memo, so a DSE sweep pays for each distinct stream once.
//!
//! Every finding is *continuation-sound* (still true if the stream were a
//! prefix of a longer run) and independently re-provable: [`validate`]
//! re-proves each reported site with a brute-force oracle that shares no
//! code with the pass, and the dynamic side cross-checks the cycle bound
//! (`bound.lower_cycles <= simulated cycles`) across the full
//! `verify_programs` sweep.

pub mod alias;
pub mod bound;
pub mod liveness;
pub mod reuse;

pub use alias::{AliasAnalysis, AliasConflict};
pub use bound::{static_bound, StaticBound};
pub use liveness::{DeadStore, DeadWrite};
pub use reuse::{RegionReuse, REUSE_BUCKETS, WHOLE_STREAM};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::compile::{fnv1a64, CompiledStream, StreamEvent};
use crate::config::{CoreConfig, MemConfig};
use crate::prog::Op;
use crate::telemetry;
use crate::verify::{Diag, DiagCode};

/// Configuration for one analysis run: the machine the stream will run on
/// plus analyzer knobs. Hashed (via its `Debug` rendering, like
/// [`config_hash`](crate::compile::config_hash)) into the memo key.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Core the bound models (use the exact config the engine will run).
    pub core: CoreConfig,
    /// Memory hierarchy the bound models.
    pub mem: MemConfig,
    /// CAM index-table capacity in entries, when the stream targets a VIA
    /// configuration (`None` disables the VIA104 occupancy check).
    pub cam_entries: Option<u64>,
    /// How many past scatters stay must-alias candidates (the static
    /// sharpening of the dynamic check's 32-entry window).
    pub alias_window: usize,
    /// Cap on retained finding sites / diagnostics per code (counts are
    /// always exact; only the exemplar lists are truncated).
    pub max_exemplars: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig::from_machine(&CoreConfig::default(), &MemConfig::default())
    }
}

impl AnalyzeConfig {
    /// An analyzer for the given machine, with default knobs.
    pub fn from_machine(core: &CoreConfig, mem: &MemConfig) -> Self {
        AnalyzeConfig {
            core: core.clone(),
            mem: mem.clone(),
            cam_entries: None,
            alias_window: 1 << 16,
            max_exemplars: 16,
        }
    }

    /// Enables the CAM occupancy check against `entries` capacity.
    pub fn with_cam_entries(mut self, entries: u64) -> Self {
        self.cam_entries = Some(entries);
        self
    }

    /// FNV-1a hash of the full configuration (memo key half).
    pub fn config_hash(&self) -> u64 {
        fnv1a64(format!("{self:?}").into_bytes())
    }
}

/// Proven facts about CAM index-table occupancy, from the stream's
/// `"sspm mode: *"` markers: insertions can only happen while CAM mode is
/// active, at most `vl` per VIA op, and a `cleared` marker resets the
/// table — so the running count is a sound upper bound on live entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CamSummary {
    /// CAM-mode intervals seen in the stream.
    pub cam_intervals: u64,
    /// VIA (custom) ops issued while CAM mode was active.
    pub cam_ops: u64,
    /// Max proven upper bound on concurrently live index-table entries
    /// (max over clear-delimited segments of `cam ops × vl`).
    pub insert_upper: u64,
    /// The capacity checked against ([`AnalyzeConfig::cam_entries`]).
    pub capacity: Option<u64>,
    /// `Some(true)` when `insert_upper <= capacity` — the VIA011/VIA012
    /// runtime warnings can never fire for this stream. `None` when no
    /// capacity was configured.
    pub proven_no_overflow: Option<bool>,
}

/// The machine-readable result of analyzing one stream under one
/// [`AnalyzeConfig`]. Counts are exact; `*_sites` lists are exemplars
/// capped at [`AnalyzeConfig::max_exemplars`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Content hash of the analyzed stream ([`CompiledStream::stream_hash`]).
    pub stream_hash: u64,
    /// Hash of the [`AnalyzeConfig`] used (the other memo key half).
    pub config_hash: u64,
    /// Instructions analyzed.
    pub instructions: u64,
    /// Rendered `analysis[VIAxxx]` diagnostics (one per retained site).
    pub diags: Vec<Diag>,
    /// Total provably dead register writes (VIA101).
    pub dead_writes: u64,
    /// Exemplar dead-write sites.
    pub dead_write_sites: Vec<DeadWrite>,
    /// Registers unread at stream end (*not* dead; informational).
    pub unread_at_end: u64,
    /// Total provably dead stores (VIA102).
    pub dead_stores: u64,
    /// Bytes across all dead stores.
    pub dead_store_bytes: u64,
    /// Exemplar dead-store sites.
    pub dead_store_sites: Vec<DeadStore>,
    /// Total must-alias conflicts (VIA103).
    pub alias_conflicts: u64,
    /// Exemplar conflict sites.
    pub alias_sites: Vec<AliasConflict>,
    /// Scatter candidates dropped by the alias window/per-line caps (0
    /// means the alias pass was exhaustive).
    pub alias_dropped: u64,
    /// Per-region reuse profiles ([`WHOLE_STREAM`] first).
    pub regions: Vec<RegionReuse>,
    /// CAM index-table occupancy facts.
    pub cam: CamSummary,
    /// The static cycle lower bound and its terms.
    pub bound: StaticBound,
}

impl AnalysisReport {
    /// The whole-stream reuse profile (always present).
    pub fn whole_stream(&self) -> &RegionReuse {
        &self.regions[0]
    }

    /// True when no analysis diagnostics fired.
    pub fn is_quiet(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Runs the CAM occupancy pass (see [`CamSummary`]). `first_overflow_at`
/// in the return is the index of the VIA op whose insertions first push
/// the proven bound past capacity, if any.
fn cam_occupancy(
    insts: &[crate::prog::Inst],
    events: &[(usize, StreamEvent)],
    cfg: &AnalyzeConfig,
) -> (CamSummary, Option<u64>) {
    let vl = cfg.core.vl.max(1) as u64;
    let mut summary = CamSummary {
        capacity: cfg.cam_entries,
        ..CamSummary::default()
    };
    let mut in_cam = false;
    let mut segment_ops = 0u64; // VIA ops since the last `cleared`
    let mut first_overflow = None;
    let mut ev = events.iter().peekable();
    for (i, inst) in insts.iter().enumerate() {
        while let Some(&&(pos, ref e)) = ev.peek() {
            if pos > i {
                break;
            }
            if let StreamEvent::Marker(m) = e {
                match *m {
                    "sspm mode: cam" if !in_cam => {
                        in_cam = true;
                        summary.cam_intervals += 1;
                    }
                    "sspm mode: direct" => in_cam = false,
                    "sspm mode: cleared" => {
                        in_cam = false;
                        segment_ops = 0;
                    }
                    _ => {}
                }
            }
            ev.next();
        }
        if in_cam && matches!(inst.op, Op::Custom { .. }) {
            summary.cam_ops += 1;
            segment_ops += 1;
            let upper = segment_ops * vl;
            summary.insert_upper = summary.insert_upper.max(upper);
            if first_overflow.is_none() {
                if let Some(cap) = cfg.cam_entries {
                    if upper > cap {
                        first_overflow = Some(i as u64);
                    }
                }
            }
        }
    }
    summary.proven_no_overflow = cfg.cam_entries.map(|cap| summary.insert_upper <= cap);
    (summary, first_overflow)
}

/// Analyzes one compiled stream: runs every pass and assembles the
/// [`AnalysisReport`] (including its `analysis[VIAxxx]` diagnostics).
pub fn analyze(stream: &CompiledStream, cfg: &AnalyzeConfig) -> AnalysisReport {
    let insts = stream.insts();
    let regs = liveness::dead_register_writes(insts);
    let stores = liveness::dead_stores(insts);
    let aliases = alias::must_alias_conflicts(insts, cfg.alias_window);
    let regions = reuse::region_reuse(insts, stream.events(), cfg.mem.l1.line_bytes as u64);
    let (cam, cam_overflow_at) = cam_occupancy(insts, stream.events(), cfg);
    let bound = bound::static_bound(insts, cfg);

    let cap = cfg.max_exemplars;
    let mut diags = Vec::new();
    let tag_of = |idx: u64| insts[idx as usize].op.tag();
    for w in regs.dead_writes.iter().take(cap) {
        diags.push(Diag {
            code: DiagCode::DeadRegisterWrite,
            index: w.index,
            tag: tag_of(w.index),
            message: format!(
                "r{} written here is redefined at #{} with no intervening read",
                w.reg, w.overwritten_at
            ),
        });
    }
    for s in stores.dead_stores.iter().take(cap) {
        diags.push(Diag {
            code: DiagCode::DeadStore,
            index: s.index,
            tag: tag_of(s.index),
            message: format!(
                "all {} stored bytes are overwritten by #{} before any read",
                s.bytes, s.killed_at
            ),
        });
    }
    for c in aliases.conflicts.iter().take(cap) {
        diags.push(Diag {
            code: DiagCode::MustAliasConflict,
            index: c.gather,
            tag: tag_of(c.gather),
            message: format!(
                "gather byte-overlaps scatter #{} at {:#x} with no ordering evidence",
                c.scatter, c.addr
            ),
        });
    }
    if let Some(idx) = cam_overflow_at {
        diags.push(Diag {
            code: DiagCode::CamOccupancyBound,
            index: idx,
            tag: tag_of(idx),
            message: format!(
                "proven CAM insertion bound {} exceeds index-table capacity {}",
                cam.insert_upper,
                cam.capacity.unwrap_or(0)
            ),
        });
    }

    telemetry::record_analyzed(insts.len() as u64);
    AnalysisReport {
        stream_hash: stream.stream_hash(),
        config_hash: cfg.config_hash(),
        instructions: insts.len() as u64,
        diags,
        dead_writes: regs.dead_writes.len() as u64,
        dead_write_sites: regs.dead_writes.into_iter().take(cap).collect(),
        unread_at_end: regs.unread_at_end,
        dead_stores: stores.dead_stores.len() as u64,
        dead_store_bytes: stores.dead_bytes,
        dead_store_sites: stores.dead_stores.into_iter().take(cap).collect(),
        alias_conflicts: aliases.conflicts.len() as u64,
        alias_sites: aliases.conflicts.into_iter().take(cap).collect(),
        alias_dropped: aliases.dropped_candidates,
        regions,
        cam,
        bound,
    }
}

/// Re-proves every finding in `report` with the brute-force oracles (which
/// share no code with the passes) against the same stream — the replay
/// trace the findings claim to describe. Returns the first refutation.
///
/// `verify_programs` runs this over every recorded kernel stream; a
/// refutation is a false positive and fails the sweep.
pub fn validate(stream: &CompiledStream, report: &AnalysisReport) -> Result<(), String> {
    let insts = stream.insts();
    if report.stream_hash != stream.stream_hash() {
        return Err(format!(
            "report is for stream {:#x}, not {:#x}",
            report.stream_hash,
            stream.stream_hash()
        ));
    }
    for w in &report.dead_write_sites {
        liveness::confirm_dead_write(insts, w).map_err(|e| format!("VIA101 refuted: {e}"))?;
    }
    for s in &report.dead_store_sites {
        liveness::confirm_dead_store(insts, s).map_err(|e| format!("VIA102 refuted: {e}"))?;
    }
    for c in &report.alias_sites {
        alias::confirm_alias(insts, c).map_err(|e| format!("VIA103 refuted: {e}"))?;
    }
    let max_term = report
        .bound
        .replica_cycles
        .max(report.bound.scalar_term)
        .max(report.bound.vector_term)
        .max(report.bound.load_term)
        .max(report.bound.store_term)
        .max(report.bound.custom_term)
        .max(report.bound.dram_term);
    if report.bound.lower_cycles != max_term {
        return Err(format!(
            "bound is not the max of its terms: {} vs {}",
            report.bound.lower_cycles, max_term
        ));
    }
    Ok(())
}

/// Shared `(stream_hash, config_hash) → Arc<AnalysisReport>` memo, the
/// analysis counterpart of [`StreamCache`](crate::compile::StreamCache):
/// a DSE sweep analyzes each distinct `(stream, analyzer config)` pair
/// once, however many points replay it.
#[derive(Default)]
pub struct AnalysisCache {
    map: Mutex<HashMap<(u64, u64), Arc<AnalysisReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), Arc<AnalysisReport>>> {
        // Never held across pass code, so a poisoned map is consistent.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the memoized report for `(stream, cfg)`, analyzing on a
    /// miss.
    pub fn get_or_analyze(
        &self,
        stream: &CompiledStream,
        cfg: &AnalyzeConfig,
    ) -> Arc<AnalysisReport> {
        let key = (stream.stream_hash(), cfg.config_hash());
        if let Some(found) = self.map().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::record_analysis_cache(true);
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::record_analysis_cache(false);
        let report = Arc::new(analyze(stream, cfg));
        self.map().entry(key).or_insert(report).clone()
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

//! Per-region SSPM reuse-distance and working-set estimation.
//!
//! The pass replays the stream's memory accesses at cache-line granularity
//! and computes, for every access, the **exact LRU stack distance**: the
//! number of *distinct* lines touched since the previous access to the
//! same line (`cold` for first touches). The distance distribution answers
//! the question VIA's scratchpad exists for — how much of a region's
//! traffic would hit a fully-associative LRU store of a given capacity —
//! without simulating: an access hits a capacity of `C` lines iff its
//! stack distance is `< C` ([`RegionReuse::hits_within`]).
//!
//! Distances are bucketed logarithmically (`bucket = floor(log2(d + 1))`,
//! 33 buckets covering every `u64` distance) and attributed to the
//! innermost active kernel region from the stream's positional
//! [`StreamEvent`]s, aggregated by region name across iterations; a
//! synthetic [`WHOLE_STREAM`] region always covers everything.
//!
//! The stack distance is computed with the classic Bentley–Sleator
//! tree-over-time trick: a Fenwick tree marks each line's most recent
//! access position, so "distinct lines since my last access" is a prefix
//! sum — `O(log n)` per access, exact, no sampling.

use std::collections::HashMap;

use crate::compile::StreamEvent;
use crate::prog::{Inst, Op};

/// Name of the synthetic region covering the whole stream.
pub const WHOLE_STREAM: &str = "<stream>";

/// Number of `floor(log2(d + 1))` histogram buckets (covers all of `u64`).
pub const REUSE_BUCKETS: usize = 33;

/// Reuse profile of one kernel region (aggregated over every dynamic
/// instance of the region name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReuse {
    /// Region name from `Engine::region`, or [`WHOLE_STREAM`].
    pub name: String,
    /// Line-granular accesses attributed to the region.
    pub accesses: u64,
    /// First-touch (compulsory) accesses among them.
    pub cold: u64,
    /// Distinct lines touched — the region's working set, in lines.
    pub distinct_lines: u64,
    /// Gather/scatter *elements* issued inside the region (the traffic an
    /// SSPM-resident operand would absorb).
    pub indexed_elems: u64,
    /// `hist[b]` = accesses whose stack distance `d` has
    /// `floor(log2(d + 1)) == b`. Cold accesses are *not* in the histogram.
    pub hist: [u64; REUSE_BUCKETS],
}

impl RegionReuse {
    fn new(name: &str) -> Self {
        RegionReuse {
            name: name.to_string(),
            accesses: 0,
            cold: 0,
            distinct_lines: 0,
            indexed_elems: 0,
            hist: [0; REUSE_BUCKETS],
        }
    }

    /// Accesses that would hit a fully-associative LRU store holding
    /// `capacity_lines` lines. Conservative across bucket boundaries: only
    /// buckets whose *entire* distance range fits are counted.
    pub fn hits_within(&self, capacity_lines: u64) -> u64 {
        let mut hits = 0;
        for (b, &n) in self.hist.iter().enumerate() {
            // Bucket b holds distances in [2^b - 1, 2^(b+1) - 2].
            let max_d = (1u128 << (b + 1)) - 2;
            if max_d < capacity_lines as u128 {
                hits += n;
            }
        }
        hits
    }
}

/// Fenwick tree counting marked time slots, for prefix "distinct lines
/// accessed since" queries.
struct Bit {
    tree: Vec<u32>,
}

impl Bit {
    fn new(n: usize) -> Self {
        Bit {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in positions `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }
}

fn bucket(d: u64) -> usize {
    (64 - (d + 1).leading_zeros() - 1) as usize
}

fn for_each_line(inst: &Inst, line: u64, mut f: impl FnMut(u64, bool)) {
    match &inst.op {
        Op::Load { addr, bytes } | Op::Store { addr, bytes } => {
            let first = addr / line;
            let last = (addr + (*bytes).max(1) as u64 - 1) / line;
            for l in first..=last {
                f(l, false);
            }
        }
        Op::Gather { addrs, .. } | Op::Scatter { addrs, .. } => {
            for &a in addrs.as_slice() {
                f(a / line, true);
            }
        }
        _ => {}
    }
}

/// Runs the reuse pass. `line_bytes` sets the access granularity (use the
/// machine's L1 line size). Returns one profile per region name, the
/// synthetic [`WHOLE_STREAM`] entry first, the rest in order of first
/// appearance.
pub fn region_reuse(
    insts: &[Inst],
    events: &[(usize, StreamEvent)],
    line_bytes: u64,
) -> Vec<RegionReuse> {
    let line = line_bytes.max(1);
    // Pre-pass: size the time axis.
    let mut total_accesses = 0usize;
    for inst in insts {
        for_each_line(inst, line, |_, _| total_accesses += 1);
    }

    let mut regions: Vec<RegionReuse> = vec![RegionReuse::new(WHOLE_STREAM)];
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    // Distinct-line sets per region (indexed like `regions`).
    let mut lines_of: Vec<HashMap<u64, ()>> = vec![HashMap::new()];
    let mut stack: Vec<usize> = Vec::new();

    let mut bit = Bit::new(total_accesses);
    let mut last_time: HashMap<u64, usize> = HashMap::new();
    let mut now = 0usize;
    let mut ev = events.iter().peekable();

    for (i, inst) in insts.iter().enumerate() {
        while let Some(&&(pos, ref e)) = ev.peek() {
            if pos > i {
                break;
            }
            match e {
                StreamEvent::RegionBegin(name) => {
                    let idx = *by_name.entry(name).or_insert_with(|| {
                        regions.push(RegionReuse::new(name));
                        lines_of.push(HashMap::new());
                        regions.len() - 1
                    });
                    stack.push(idx);
                }
                StreamEvent::RegionEnd => {
                    stack.pop();
                }
                StreamEvent::Marker(_) => {}
            }
            ev.next();
        }
        let innermost = stack.last().copied();
        let indexed = matches!(inst.op, Op::Gather { .. } | Op::Scatter { .. });
        for_each_line(inst, line, |l, is_elem| {
            let dist = match last_time.get(&l).copied() {
                Some(prev) => {
                    let d = bit.prefix(now) - bit.prefix(prev);
                    bit.add(prev, -1);
                    Some(d)
                }
                None => None,
            };
            bit.add(now, 1);
            last_time.insert(l, now);
            now += 1;
            for idx in [Some(0), innermost].into_iter().flatten() {
                let r = &mut regions[idx];
                r.accesses += 1;
                if is_elem && indexed {
                    r.indexed_elems += 1;
                }
                match dist {
                    Some(d) => r.hist[bucket(d)] += 1,
                    None => r.cold += 1,
                }
                lines_of[idx].entry(l).or_insert(());
            }
        });
    }

    for (r, lines) in regions.iter_mut().zip(&lines_of) {
        r.distinct_lines = lines.len() as u64;
    }
    regions
}

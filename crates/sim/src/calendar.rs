//! Cycle-slot calendars for functional-unit and channel scheduling.
//!
//! A pool of `width` identical units is modeled as a calendar mapping cycle
//! → slots booked. An instruction books the earliest cycle ≥ its ready time
//! with a free slot — crucially this lets a *later-pushed* instruction with
//! an *earlier* ready time slip into an earlier slot, which is exactly what
//! an out-of-order scheduler does. (A single "next free time" per unit
//! would falsely serialize independent work behind long-latency dependent
//! chains.)
//!
//! The calendar is a flat array of per-cycle booked counts anchored at a
//! monotonically advancing `base` (the engine prunes history below its
//! fetch frontier, so the live window stays small). Fully-booked cycles
//! carry a *next-free* pointer that is path-compressed on lookup — the
//! union-find "earliest free slot" structure — so booking against a
//! saturated resource (a store port or the DRAM channel at 100 %
//! utilization, where full runs can span millions of cycles) skips the
//! whole run in amortized O(1) instead of one cycle at a time. One booking
//! is two array reads and a write on the common path; the previous
//! `BTreeMap` interval design cost an ordered-map probe *and* a
//! remove+insert per booking, which dominated whole-simulation profiles.

/// A booking calendar for a pool of `width` units.
#[derive(Debug, Clone, Default)]
pub struct Calendar {
    width: u32,
    /// Cycle number of `counts[0]`. Nothing below `base` is tracked; the
    /// caller promises not to book there after a [`Calendar::prune_below`]
    /// (requests are clamped up to `base`).
    base: u64,
    /// Booked slots for cycle `base + i`. Offsets past the end are
    /// implicitly zero.
    counts: Vec<u32>,
    /// For a fully-booked cycle, a forwarding pointer toward the next
    /// cycle with a free slot (path-compressed; strictly increasing, so
    /// chains cannot loop). Meaningless while `counts[i] < width`.
    next: Vec<u32>,
}

impl Calendar {
    /// A calendar for `width` parallel slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "calendar width must be positive");
        Calendar {
            width,
            base: 0,
            counts: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Number of slots per cycle.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Offset of `t` from `base`, clamping pruned history up to `base`.
    #[inline]
    fn offset(&self, t: u64) -> usize {
        t.saturating_sub(self.base) as usize
    }

    /// The earliest offset ≥ `i` whose cycle has a free slot, following and
    /// halving the next-free chain. Offsets at or past the end of the
    /// window are untouched cycles, hence free.
    #[inline]
    fn find(&mut self, mut i: usize) -> usize {
        let len = self.counts.len();
        while i < len && self.counts[i] == self.width {
            let n = self.next[i] as usize;
            // Path halving: point past the next hop's own forward pointer
            // so repeated lookups through a long run flatten it.
            let hop = if n < len && self.counts[n] == self.width {
                self.next[n] as usize
            } else {
                n
            };
            self.next[i] = hop as u32;
            i = hop;
        }
        i
    }

    /// Grows the window so `off` is indexable. Fresh cycles are empty.
    #[inline]
    fn ensure(&mut self, off: usize) {
        if off >= self.counts.len() {
            self.counts.resize(off + 1, 0);
            self.next.resize(off + 1, 0);
        }
    }

    /// Increments the booked count at `off`, installing the next-free
    /// pointer when the cycle fills.
    #[inline]
    fn bump(&mut self, off: usize) {
        self.ensure(off);
        let c = &mut self.counts[off];
        *c += 1;
        if *c == self.width {
            self.next[off] = (off + 1) as u32;
        }
    }

    /// Books one slot at the earliest cycle ≥ `t`; returns the cycle.
    #[inline]
    pub fn book(&mut self, t: u64) -> u64 {
        let off = self.find(self.offset(t));
        self.bump(off);
        self.base + off as u64
    }

    /// Books `span` *consecutive* cycles (all slots of one unit) starting at
    /// the earliest position ≥ `t`; returns the start cycle. Used for
    /// channel occupancy (e.g. a DRAM line transfer). Partially-booked
    /// cycles inside the window are acceptable (a different unit's slots);
    /// only fully-booked cycles block.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn book_span(&mut self, t: u64, span: u64) -> u64 {
        assert!(span > 0, "span must be positive");
        let span = span as usize;
        let mut candidate = self.find(self.offset(t));
        'probe: loop {
            // Scan the window back-to-front: jumping past the *last* full
            // cycle (and its whole run) skips the most ground per retry.
            let lim = (candidate + span).min(self.counts.len());
            let mut i = lim;
            while i > candidate {
                i -= 1;
                if self.counts[i] == self.width {
                    candidate = self.find(i);
                    continue 'probe;
                }
            }
            break;
        }
        for off in candidate..candidate + span {
            self.bump(off);
        }
        self.base + candidate as u64
    }

    /// Drops bookings strictly below `t` (no future booking can land there
    /// once all ready times have passed `t`).
    pub fn prune_below(&mut self, t: u64) {
        if t <= self.base {
            return;
        }
        let k = ((t - self.base) as usize).min(self.counts.len());
        self.counts.drain(..k);
        self.next.drain(..k);
        // Forward pointers are window offsets; rebase the survivors. A full
        // cycle's pointer is ≥ its own offset ≥ k, so this is exact.
        for n in &mut self.next {
            *n = n.saturating_sub(k as u32);
        }
        self.base = t;
    }

    /// Number of distinct booked entries currently held (diagnostic; a
    /// contiguous fully-booked run counts once regardless of length).
    pub fn booked_cycles(&self) -> usize {
        let mut entries = 0;
        let mut in_run = false;
        for &c in &self.counts {
            if c == self.width {
                if !in_run {
                    entries += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
                if c > 0 {
                    entries += 1;
                }
            }
        }
        entries
    }

    /// Drops every booking, returning the calendar to its freshly-built
    /// state (the width and allocations are kept).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.next.clear();
        self.base = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_fill_width_then_spill() {
        let mut c = Calendar::new(2);
        assert_eq!(c.book(10), 10);
        assert_eq!(c.book(10), 10);
        assert_eq!(c.book(10), 11);
        assert_eq!(c.book(10), 11);
        assert_eq!(c.book(10), 12);
    }

    #[test]
    fn later_push_can_take_earlier_slot() {
        let mut c = Calendar::new(1);
        assert_eq!(c.book(100), 100); // late dependent op
        assert_eq!(c.book(5), 5); // independent op pushed later still fits early
    }

    #[test]
    fn gaps_are_found() {
        let mut c = Calendar::new(1);
        c.book(3);
        c.book(5);
        assert_eq!(c.book(3), 4);
        assert_eq!(c.book(3), 6);
    }

    #[test]
    fn span_requires_consecutive_room() {
        let mut c = Calendar::new(1);
        c.book(12);
        // A 5-cycle span at t=10 collides with the booking at 12: it must
        // start at 13.
        assert_eq!(c.book_span(10, 5), 13);
        // Next span queues after.
        assert_eq!(c.book_span(10, 5), 18);
    }

    #[test]
    fn span_of_one_behaves_like_book() {
        let mut c = Calendar::new(1);
        assert_eq!(c.book_span(7, 1), 7);
        assert_eq!(c.book_span(7, 1), 8);
    }

    #[test]
    fn span_tolerates_partial_cycles_in_window() {
        let mut c = Calendar::new(2);
        c.book(11); // cycle 11 half-booked
                    // A width-2 calendar still has a free unit through 10..15.
        assert_eq!(c.book_span(10, 5), 10);
    }

    #[test]
    fn full_runs_coalesce_and_skip_in_one_step() {
        let mut c = Calendar::new(1);
        for i in 0..10_000u64 {
            assert_eq!(c.book(0), i, "sequential fill");
        }
        // The whole saturated run reads as a single entry.
        assert_eq!(c.booked_cycles(), 1);
        assert_eq!(c.book(0), 10_000);
    }

    #[test]
    fn saturated_channel_is_fast() {
        // The pathological case that motivated the skip structure: ~200k
        // span bookings against an always-behind request time. Completes
        // in well under a second when run skipping is amortized O(1).
        let mut c = Calendar::new(1);
        let start = std::time::Instant::now();
        let mut expect = 0u64;
        for _ in 0..200_000u64 {
            let got = c.book_span(0, 5);
            assert_eq!(got, expect);
            expect += 5;
        }
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "saturated booking took {:?}",
            start.elapsed()
        );
        assert_eq!(c.booked_cycles(), 1);
    }

    #[test]
    fn prune_discards_history_but_keeps_future() {
        let mut c = Calendar::new(1);
        c.book(1);
        c.book(100);
        c.prune_below(50);
        assert_eq!(c.booked_cycles(), 1);
        // Cycle 1 is forgotten; bookings below the prune point clamp up to
        // it (we promise never to ask below the prune point in real use).
        assert_eq!(c.book(100), 101);
    }

    #[test]
    fn prune_keeps_straddling_run_tail() {
        let mut c = Calendar::new(1);
        c.book_span(0, 100); // full run [0, 100)
        c.prune_below(50);
        // Cycles 50..100 must still read as booked.
        assert_eq!(c.book(50), 100);
    }

    #[test]
    fn interleaved_books_and_spans_stay_consistent() {
        let mut c = Calendar::new(1);
        let a = c.book_span(0, 3); // [0,3)
        let b = c.book(1); // → 3
        let d = c.book_span(0, 2); // → [4,6)
        assert_eq!((a, b, d), (0, 3, 4));
        assert_eq!(c.book(0), 6);
    }

    #[test]
    fn prune_then_rebook_respects_rebased_window() {
        // Regression for the offset-rebasing in prune_below: pointers must
        // survive the window shifting under them.
        let mut c = Calendar::new(1);
        c.book_span(10, 20); // full run [10, 30)
        c.book(40);
        c.prune_below(15);
        assert_eq!(c.book(12), 30); // clamped to 15, run tail still booked
        assert_eq!(c.book(40), 41);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Calendar::new(0);
    }
}

//! Cycle-slot calendars for functional-unit and channel scheduling.
//!
//! A pool of `width` identical units is modeled as a calendar mapping cycle
//! → slots booked. An instruction books the earliest cycle ≥ its ready time
//! with a free slot — crucially this lets a *later-pushed* instruction with
//! an *earlier* ready time slip into an earlier slot, which is exactly what
//! an out-of-order scheduler does. (A single "next free time" per unit
//! would falsely serialize independent work behind long-latency dependent
//! chains.)
//!
//! Saturated resources (a store port or the DRAM channel running at 100 %
//! utilization) produce *runs* of fully-booked cycles that can span
//! millions of entries; the calendar coalesces them into disjoint
//! intervals so a booking skips a whole run in `O(log n)` instead of one
//! cycle at a time.

use std::collections::BTreeMap;

/// A booking calendar for a pool of `width` units.
#[derive(Debug, Clone, Default)]
pub struct Calendar {
    width: u32,
    /// Per-cycle booked counts for cycles that are not yet full.
    partial: BTreeMap<u64, u32>,
    /// Disjoint, coalesced `[start, end)` runs of fully-booked cycles.
    full: BTreeMap<u64, u64>,
}

impl Calendar {
    /// A calendar for `width` parallel slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "calendar width must be positive");
        Calendar {
            width,
            partial: BTreeMap::new(),
            full: BTreeMap::new(),
        }
    }

    /// Number of slots per cycle.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The end of the full run containing `c`, or `c` itself if none does.
    fn skip_full(&self, c: u64) -> u64 {
        match self.full.range(..=c).next_back() {
            Some((_, &end)) if c < end => end,
            _ => c,
        }
    }

    /// Increments cycle `c`'s booked count, promoting it into the full-run
    /// set (with coalescing) when it reaches `width`.
    fn bump(&mut self, c: u64) {
        let count = self.partial.remove(&c).unwrap_or(0) + 1;
        if count < self.width {
            self.partial.insert(c, count);
            return;
        }
        // Promote to a full run, coalescing with neighbours.
        let mut start = c;
        let mut end = c + 1;
        if let Some((&s, &e)) = self.full.range(..=c).next_back() {
            debug_assert!(e <= c, "booked a cycle inside a full run");
            if e == c {
                start = s;
                self.full.remove(&s);
            }
        }
        if let Some(&e2) = self.full.get(&end) {
            self.full.remove(&end);
            end = e2;
        }
        self.full.insert(start, end);
    }

    /// Books one slot at the earliest cycle ≥ `t`; returns the cycle.
    pub fn book(&mut self, t: u64) -> u64 {
        let c = self.skip_full(t);
        // `c` is not inside a full run, so it has a free slot.
        self.bump(c);
        c
    }

    /// Books `span` *consecutive* cycles (all slots of one unit) starting at
    /// the earliest position ≥ `t`; returns the start cycle. Used for
    /// channel occupancy (e.g. a DRAM line transfer). Partially-booked
    /// cycles inside the window are acceptable (a different unit's slots);
    /// only fully-booked cycles block.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn book_span(&mut self, t: u64, span: u64) -> u64 {
        assert!(span > 0, "span must be positive");
        let mut candidate = self.skip_full(t);
        loop {
            // The last full run starting before the window's end; if it
            // reaches into the window, jump past it.
            match self.full.range(..candidate + span).next_back() {
                Some((_, &end)) if end > candidate => {
                    candidate = self.skip_full(end);
                }
                _ => break,
            }
        }
        for c in candidate..candidate + span {
            self.bump(c);
        }
        candidate
    }

    /// Drops bookings strictly below `t` (no future booking can land there
    /// once all ready times have passed `t`).
    pub fn prune_below(&mut self, t: u64) {
        self.partial = self.partial.split_off(&t);
        // Keep any full run straddling t, trimmed to start at t.
        let mut keep = self.full.split_off(&t);
        if let Some((_, &end)) = self.full.range(..t).next_back() {
            if end > t {
                keep.insert(t, end);
            }
        }
        self.full = keep;
    }

    /// Number of map entries currently held (diagnostic; full runs count
    /// once regardless of length).
    pub fn booked_cycles(&self) -> usize {
        self.partial.len() + self.full.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_fill_width_then_spill() {
        let mut c = Calendar::new(2);
        assert_eq!(c.book(10), 10);
        assert_eq!(c.book(10), 10);
        assert_eq!(c.book(10), 11);
        assert_eq!(c.book(10), 11);
        assert_eq!(c.book(10), 12);
    }

    #[test]
    fn later_push_can_take_earlier_slot() {
        let mut c = Calendar::new(1);
        assert_eq!(c.book(100), 100); // late dependent op
        assert_eq!(c.book(5), 5); // independent op pushed later still fits early
    }

    #[test]
    fn gaps_are_found() {
        let mut c = Calendar::new(1);
        c.book(3);
        c.book(5);
        assert_eq!(c.book(3), 4);
        assert_eq!(c.book(3), 6);
    }

    #[test]
    fn span_requires_consecutive_room() {
        let mut c = Calendar::new(1);
        c.book(12);
        // A 5-cycle span at t=10 collides with the booking at 12: it must
        // start at 13.
        assert_eq!(c.book_span(10, 5), 13);
        // Next span queues after.
        assert_eq!(c.book_span(10, 5), 18);
    }

    #[test]
    fn span_of_one_behaves_like_book() {
        let mut c = Calendar::new(1);
        assert_eq!(c.book_span(7, 1), 7);
        assert_eq!(c.book_span(7, 1), 8);
    }

    #[test]
    fn span_tolerates_partial_cycles_in_window() {
        let mut c = Calendar::new(2);
        c.book(11); // cycle 11 half-booked
        // A width-2 calendar still has a free unit through 10..15.
        assert_eq!(c.book_span(10, 5), 10);
    }

    #[test]
    fn full_runs_coalesce_and_skip_in_one_step() {
        let mut c = Calendar::new(1);
        for i in 0..10_000u64 {
            assert_eq!(c.book(0), i, "sequential fill");
        }
        // The whole saturated run is a single interval.
        assert_eq!(c.booked_cycles(), 1);
        assert_eq!(c.book(0), 10_000);
    }

    #[test]
    fn saturated_channel_is_fast() {
        // The pathological case that motivated the interval design: ~200k
        // span bookings against an always-behind request time. Completes
        // in well under a second when skipping is O(log n).
        let mut c = Calendar::new(1);
        let start = std::time::Instant::now();
        let mut expect = 0u64;
        for _ in 0..200_000u64 {
            let got = c.book_span(0, 5);
            assert_eq!(got, expect);
            expect += 5;
        }
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "saturated booking took {:?}",
            start.elapsed()
        );
        assert_eq!(c.booked_cycles(), 1);
    }

    #[test]
    fn prune_discards_history_but_keeps_future() {
        let mut c = Calendar::new(1);
        c.book(1);
        c.book(100);
        c.prune_below(50);
        assert_eq!(c.booked_cycles(), 1);
        // Cycle 1 is forgotten; a new booking at 1 succeeds (we promise
        // never to ask below the prune point in real use).
        assert_eq!(c.book(100), 101);
    }

    #[test]
    fn prune_keeps_straddling_run_tail() {
        let mut c = Calendar::new(1);
        c.book_span(0, 100); // full run [0, 100)
        c.prune_below(50);
        // Cycles 50..100 must still read as booked.
        assert_eq!(c.book(50), 100);
    }

    #[test]
    fn interleaved_books_and_spans_stay_consistent() {
        let mut c = Calendar::new(1);
        let a = c.book_span(0, 3); // [0,3)
        let b = c.book(1); // → 3
        let d = c.book_span(0, 2); // → [4,6)
        assert_eq!((a, b, d), (0, 3, 4));
        assert_eq!(c.book(0), 6);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Calendar::new(0);
    }
}

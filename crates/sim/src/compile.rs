//! Compile-once / replay-many support for design-space sweeps.
//!
//! Sweeps (`fig9_dse`, `via-campaign`) historically re-emitted and
//! re-decoded every kernel's instruction stream at every (config × matrix)
//! point, redoing identical work thousands of times. This module splits
//! that pipeline:
//!
//! * **compile** — run a kernel once with
//!   [`Engine::enable_recording`](crate::Engine::enable_recording) (or feed
//!   an offline [`Program`] to [`CompiledStream::compile`]) to obtain a
//!   [`CompiledStream`]: the pre-decoded flat instruction array with its
//!   operand/dependence edges already resolved into virtual-register ids,
//!   plus a one-shot static verify report reusing `via-verify`'s analysis;
//! * **replay** — [`Engine::replay`](crate::Engine::replay) is a pure
//!   timing loop over that array: no per-sweep emission, allocation, or
//!   dependence recomputation, and the verifier never re-runs.
//!
//! Two memo levels layer on top: a process-wide [`StreamCache`] (keyed by
//! the caller's FNV-1a content hashes, shared across sweep workers so each
//! (matrix, kernel) point compiles exactly once per process), and the
//! persistent (stream-hash, config-hash) → cycle cache `via-campaign`
//! keeps in its JSONL store. [`fnv1a64`], [`stream_hash`] and
//! [`config_hash`] define those keys.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::config::{CoreConfig, MemConfig};
use crate::prog::{Inst, Op};
use crate::telemetry;
use crate::verify::{verify_program, Program, Report, VerifyConfig};

/// 64-bit FNV-1a over a byte stream. Stable across platforms and releases —
/// it keys the campaign store's content seals and the persistent cycle
/// cache, so changing it would orphan every existing store.
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = Fnv::new();
    for b in bytes {
        h.write_u8(b);
    }
    h.finish()
}

/// Incremental FNV-1a hasher (the loop form of [`fnv1a64`], for hashing
/// structured data without materializing a byte buffer).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical content hash of an instruction array: FNV-1a over a fixed
/// little-endian encoding of every instruction (op discriminant + payload,
/// source registers, destination). Two arrays hash equal iff they replay
/// to identical cycles, so this is the first half of the persistent
/// (stream-hash, config-hash) cycle-cache key.
/// [`CompiledStream::stream_hash`] extends this with the recorded
/// region/marker events (which don't affect timing but are part of the
/// stream's observable content).
pub fn stream_hash(insts: &[Inst]) -> u64 {
    let mut h = Fnv::new();
    for inst in insts {
        hash_inst(&mut h, inst);
    }
    h.finish()
}

fn hash_inst(h: &mut Fnv, inst: &Inst) {
    match &inst.op {
        Op::Scalar { kind } => {
            h.write_u8(0);
            h.write_u8(*kind as u8);
        }
        Op::Load { addr, bytes } => {
            h.write_u8(1);
            h.write_u64(*addr);
            h.write_u32(*bytes);
        }
        Op::Store { addr, bytes } => {
            h.write_u8(2);
            h.write_u64(*addr);
            h.write_u32(*bytes);
        }
        Op::Gather { addrs, elem_bytes } => {
            h.write_u8(3);
            h.write_u32(*elem_bytes);
            h.write_u32(addrs.len() as u32);
            for &a in addrs.as_slice() {
                h.write_u64(a);
            }
        }
        Op::Scatter { addrs, elem_bytes } => {
            h.write_u8(4);
            h.write_u32(*elem_bytes);
            h.write_u32(addrs.len() as u32);
            for &a in addrs.as_slice() {
                h.write_u64(a);
            }
        }
        Op::Vec { kind } => {
            h.write_u8(5);
            h.write_u8(*kind as u8);
        }
        Op::Custom {
            occupancy,
            latency,
            at_commit,
        } => {
            h.write_u8(6);
            h.write_u32(*occupancy);
            h.write_u32(*latency);
            h.write_u8(*at_commit as u8);
        }
        Op::Branch { taken, site } => {
            h.write_u8(7);
            h.write_u8(*taken as u8);
            h.write_u32(*site);
        }
        Op::Delay { cycles } => {
            h.write_u8(8);
            h.write_u32(*cycles);
        }
        Op::Fence => h.write_u8(9),
    }
    h.write_u8(inst.srcs.len() as u8);
    for &r in inst.srcs.as_slice() {
        h.write_u32(r);
    }
    match inst.dst {
        Some(d) => {
            h.write_u8(1);
            h.write_u32(d);
        }
        None => h.write_u8(0),
    }
}

/// Content hash of the timing-relevant machine configuration (core +
/// memory hierarchy), the second half of the persistent cycle-cache key: a
/// cached cycle count is only valid for replay under the exact
/// configuration that produced it. Hashes the `Debug` rendering, which
/// covers every field of both structs.
pub fn config_hash(core: &CoreConfig, mem: &MemConfig) -> u64 {
    fnv1a64(format!("{core:?}|{mem:?}").into_bytes())
}

/// A non-instruction annotation recorded alongside the stream: kernel
/// region boundaries and trace markers are engine API calls, not
/// instructions, so replay must re-issue them at the recorded stream
/// positions for stall-attribution region labels (and Chrome traces) to be
/// bit-identical to the interpreted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// [`Engine::region`](crate::Engine::region) with this name.
    RegionBegin(&'static str),
    /// [`Engine::region_end`](crate::Engine::region_end).
    RegionEnd,
    /// [`Engine::trace_marker`](crate::Engine::trace_marker).
    Marker(&'static str),
}

/// A kernel's instruction stream compiled for replay: the pre-decoded flat
/// instruction array (operand/dependence edges resolved into virtual
/// register ids at emission), the region/marker annotations, and the
/// one-shot static verify report. See the [module docs](self) for the
/// compile/replay pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStream {
    insts: Vec<Inst>,
    /// `(position, event)` pairs, non-decreasing in position: the event
    /// fired after `position` instructions had been pushed.
    events: Vec<(usize, StreamEvent)>,
    verify: Report,
    stream_hash: u64,
}

impl CompiledStream {
    /// Wraps a recorded stream, its region/marker events, and its verify
    /// report (used by
    /// [`Engine::take_compiled`](crate::Engine::take_compiled), whose
    /// report also carries externally routed diagnostics such as
    /// `via-core`'s SSPM mode checks).
    pub fn from_recording(
        insts: Vec<Inst>,
        events: Vec<(usize, StreamEvent)>,
        verify: Report,
    ) -> Self {
        telemetry::record_compiled(insts.len() as u64);
        let mut hash = Fnv::new();
        for inst in &insts {
            hash_inst(&mut hash, inst);
        }
        for (pos, event) in &events {
            hash.write_u64(*pos as u64);
            let (tag, name) = match event {
                StreamEvent::RegionBegin(n) => (0u8, *n),
                StreamEvent::RegionEnd => (1, ""),
                StreamEvent::Marker(n) => (2, *n),
            };
            hash.write_u8(tag);
            for b in name.bytes() {
                hash.write_u8(b);
            }
        }
        CompiledStream {
            insts,
            events,
            verify,
            stream_hash: hash.finish(),
        }
    }

    /// Compiles an offline [`Program`]: one-shot static verification via
    /// `via-verify`'s [`verify_program`] (reusing its whole-program
    /// analysis rather than re-deriving checks here), then the flat array.
    pub fn compile(mut prog: Program, cfg: &VerifyConfig) -> Self {
        let verify = verify_program(&prog, cfg);
        let insts = std::mem::take(prog.insts_mut());
        Self::from_recording(insts, Vec::new(), verify)
    }

    /// The pre-decoded instructions, in stream order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Region/marker annotations as `(position, event)` pairs.
    pub fn events(&self) -> &[(usize, StreamEvent)] {
        &self.events
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The compile-time verify report (re-submitted verbatim on replay, so
    /// diagnostics are bit-identical between the interpreted and compiled
    /// paths).
    pub fn verify(&self) -> &Report {
        &self.verify
    }

    /// The stream's canonical content hash: [`stream_hash`] over the
    /// instructions, extended with the region/marker events.
    pub fn stream_hash(&self) -> u64 {
        self.stream_hash
    }
}

/// A process-wide compiled-stream cache, shared by sweep workers so each
/// (matrix, kernel, config) point compiles exactly once per process.
///
/// Keys are caller-chosen FNV-1a content hashes (the campaign uses its
/// store's matrix fingerprints; `fig9_dse` hashes the sweep-point
/// identity). Hit/miss counts feed both the local accessors and the
/// process-wide [`telemetry`] counters.
#[derive(Debug, Default)]
pub struct StreamCache {
    map: Mutex<HashMap<u64, Arc<CompiledStream>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StreamCache {
    /// An empty cache.
    pub fn new() -> Self {
        StreamCache::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<CompiledStream>>> {
        // A worker can only panic between cache operations (the lock is
        // never held across kernel code), so a poisoned map is still
        // consistent: recover it.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a compiled stream, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<CompiledStream>> {
        let found = self.map().get(&key).cloned();
        let counter = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        telemetry::record_stream_cache(found.is_some());
        found
    }

    /// Inserts a freshly compiled stream and returns the shared handle
    /// (the winner's, if another worker raced the same key).
    pub fn insert(&self, key: u64, stream: CompiledStream) -> Arc<CompiledStream> {
        self.map()
            .entry(key)
            .or_insert_with(|| Arc::new(stream))
            .clone()
    }

    /// Returns the cached stream for `key`, compiling with `f` on a miss.
    pub fn get_or_compile(
        &self,
        key: u64,
        f: impl FnOnce() -> CompiledStream,
    ) -> Arc<CompiledStream> {
        match self.get(key) {
            Some(s) => s,
            None => self.insert(key, f()),
        }
    }

    /// Number of cached streams.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::AluKind;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors; the campaign store depends on
        // these exact values.
        assert_eq!(fnv1a64([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn stream_hash_distinguishes_payload_sources_and_dst() {
        let base = vec![Inst::load(0x100, 8, 1)];
        let other_addr = vec![Inst::load(0x108, 8, 1)];
        let other_dst = vec![Inst::load(0x100, 8, 2)];
        let with_dep = vec![Inst::load_dep(0x100, 8, &[3], 1)];
        let h = stream_hash(&base);
        assert_eq!(h, stream_hash(&base.clone()));
        assert_ne!(h, stream_hash(&other_addr));
        assert_ne!(h, stream_hash(&other_dst));
        assert_ne!(h, stream_hash(&with_dep));
    }

    #[test]
    fn config_hash_tracks_every_timing_knob() {
        let core = CoreConfig::default();
        let mem = MemConfig::default();
        let h = config_hash(&core, &mem);
        assert_eq!(h, config_hash(&core.clone(), &mem.clone()));
        let wide = core.clone().wide_vectors();
        assert_ne!(h, config_hash(&wide, &mem));
        let mut slow = mem.clone();
        slow.dram_latency += 1;
        assert_ne!(h, config_hash(&core, &slow));
    }

    #[test]
    fn compile_runs_the_static_verifier_once() {
        let prog: Program = vec![
            Inst::scalar(AluKind::Int, &[], Some(0)),
            // Register 42 has no producer: VIA001.
            Inst::scalar(AluKind::Int, &[42], None),
        ]
        .into_iter()
        .collect();
        let cfg = VerifyConfig::from_core(&CoreConfig::default());
        let stream = CompiledStream::compile(prog, &cfg);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.verify().error_count(), 1);
        assert_eq!(stream.verify().instructions, 2);
    }

    #[test]
    fn stream_cache_shares_and_counts() {
        let cache = StreamCache::new();
        let build = || {
            CompiledStream::from_recording(
                vec![Inst::scalar(AluKind::Int, &[], Some(0))],
                Vec::new(),
                Report::default(),
            )
        };
        assert!(cache.get(7).is_none());
        let a = cache.get_or_compile(7, build);
        let b = cache.get_or_compile(7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2); // the bare get() and the first get_or_compile
    }
}

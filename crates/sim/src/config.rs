//! Simulation parameters (the reproduction's Table I).

/// Out-of-order core parameters.
///
/// Defaults model a Haswell-class core at 2 GHz, matching the paper's
/// baseline (a single out-of-order x86 core with AVX2, §V-A, Table I; the
/// area comparison in §VI-B is against a 22 nm Haswell core).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Clock frequency in GHz (used only for bandwidth/energy conversion).
    pub freq_ghz: f64,
    /// Instructions fetched/renamed per cycle.
    pub fetch_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Scalar integer/FP ALUs.
    pub scalar_alus: u32,
    /// Vector ALUs (each `vl` lanes wide).
    pub vector_alus: u32,
    /// L1D load ports.
    pub load_ports: u32,
    /// L1D store ports.
    pub store_ports: u32,
    /// Vector length in 64-bit elements (AVX2 = 4, AVX-512 = 8).
    pub vl: u32,
    /// Scalar ALU latency (cycles).
    pub scalar_latency: u32,
    /// Vector add/mul latency.
    pub vec_alu_latency: u32,
    /// Vector FMA latency.
    pub vec_fma_latency: u32,
    /// Vector reduction latency (log-tree over `vl` lanes).
    pub vec_reduce_latency: u32,
    /// Vector permute/shuffle latency.
    pub vec_permute_latency: u32,
    /// AVX-512CD-style conflict-detection latency (the instruction is
    /// microcoded and slow on real parts).
    pub vec_conflict_latency: u32,
    /// Fixed overhead added to every gather/scatter on top of the
    /// per-element cache accesses. Calibrated so an all-L1-hit AVX2 gather
    /// costs ≥ 22 cycles, the best case the paper quotes (§III-A).
    pub gather_overhead: u32,
    /// Front-end refill penalty after a branch misprediction (cycles from
    /// branch resolution to useful fetch).
    pub mispredict_penalty: u32,
    /// Number of custom functional units (the FIVU). Zero for the baseline
    /// core: pushing a custom op then is a programming error.
    pub custom_units: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            freq_ghz: 2.0,
            fetch_width: 4,
            commit_width: 4,
            rob_size: 192,
            scalar_alus: 4,
            vector_alus: 2,
            load_ports: 2,
            store_ports: 1,
            vl: 4,
            scalar_latency: 1,
            vec_alu_latency: 3,
            vec_fma_latency: 5,
            vec_reduce_latency: 6,
            vec_permute_latency: 3,
            vec_conflict_latency: 12,
            gather_overhead: 18,
            mispredict_penalty: 14,
            custom_units: 0,
        }
    }
}

impl CoreConfig {
    /// The baseline core extended with one FIVU (custom unit), as VIA
    /// attaches to the pipeline (paper §IV-E).
    pub fn with_custom_unit(mut self) -> Self {
        self.custom_units = 1;
        self
    }

    /// Convenience: the default core with AVX-512-width vectors (used by the
    /// histogram baseline, which needs `vpconflictd`).
    pub fn wide_vectors(mut self) -> Self {
        self.vl = 8;
        self
    }
}

/// One cache level's geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles (added on a hit at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "cache size must be a multiple of ways * line size"
        );
        lines / self.ways
    }
}

/// Memory hierarchy parameters (Table I defaults: 32 KB L1D, 256 KB L2,
/// 8 MB L3, DDR-like DRAM at 200 cycles and 12.8 bytes/cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// DRAM access latency in cycles (beyond L3).
    pub dram_latency: u32,
    /// DRAM bandwidth in bytes per core cycle (25.6 GB/s at 2 GHz = 12.8).
    pub dram_bytes_per_cycle: f64,
    /// L2 next-line stream prefetch degree: on an L2 miss, this many
    /// subsequent lines are fetched into L2 in the background (0 disables
    /// prefetching — the default, so the published results are
    /// prefetcher-free like the paper's Table I baseline; the `ablations`
    /// binary quantifies its effect).
    pub prefetch_degree: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 12,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 36,
            },
            dram_latency: 200,
            dram_bytes_per_cycle: 12.8,
            prefetch_degree: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_consistent() {
        let mem = MemConfig::default();
        assert_eq!(mem.l1.sets(), 64);
        assert_eq!(mem.l2.sets(), 512);
        assert_eq!(mem.l3.sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 1024,
            ways: 3,
            line_bytes: 64,
            latency: 1,
        }
        .sets();
    }

    #[test]
    fn custom_unit_builder() {
        let c = CoreConfig::default();
        assert_eq!(c.custom_units, 0);
        assert_eq!(c.clone().with_custom_unit().custom_units, 1);
        assert_eq!(c.wide_vectors().vl, 8);
    }

    #[test]
    fn gather_best_case_meets_paper_floor() {
        // Fixed overhead + L1 latency must be at least the 22 cycles the
        // paper quotes for an all-hit gather.
        let core = CoreConfig::default();
        let mem = MemConfig::default();
        assert!(core.gather_overhead + mem.l1.latency >= 22);
    }

    #[test]
    fn configs_are_cloneable_and_comparable() {
        let mem = MemConfig::default();
        assert_eq!(mem, mem.clone());
        let core = CoreConfig::default();
        assert_eq!(core, core.clone());
    }
}

//! The out-of-order timing engine.
//!
//! The engine is *streaming*: kernels push dynamic instructions one at a
//! time and the engine computes fetch/issue/complete/commit times in O(1)
//! per instruction (an interval-style analytical OoO model). The modeled
//! constraints are:
//!
//! * **fetch width** — at most `fetch_width` instructions enter per cycle;
//! * **ROB occupancy** — an instruction cannot enter until the instruction
//!   `rob_size` positions ahead of it has committed;
//! * **data dependences** — an instruction issues only after all source
//!   registers' producers complete (capture-at-entry = perfect renaming);
//! * **structural hazards** — each op class draws from a finite unit pool
//!   (scalar ALUs, vector ALUs, load/store ports, custom units);
//! * **memory** — every load/store walks the cache [`Hierarchy`]; gathers
//!   and scatters pay one cache access *and* one port slot per element plus
//!   a fixed overhead (paper §III-A);
//! * **commit** — in order, `commit_width` per cycle; *commit-serialized*
//!   custom ops (VIA instructions, paper §IV-E) issue only once every older
//!   non-custom instruction has completed, while still pipelining among
//!   themselves through the custom unit.

use std::sync::Arc;

use crate::alloc::AddressSpace;
use crate::analyze::{self, AnalysisReport, AnalyzeConfig};
use crate::calendar::Calendar;
use crate::compile::{CompiledStream, StreamEvent};
use crate::config::{CoreConfig, MemConfig};
use crate::mem::Hierarchy;
use crate::prog::{AluKind, Inst, Op, Reg, VecOpKind};
use crate::stats::RunStats;
use crate::timeline::{Timeline, TimelineEntry};
use crate::trace::{
    self, EventRing, MemLevel, OpClass, RegionStalls, StallCause, StallReport, TraceEvent,
    TraceState,
};
use crate::verify::{self, Severity, Verifier, VerifyConfig};

/// Monotone lifecycle boundaries of one pushed instruction, handed to the
/// stall-attribution pass (`fetch ≤ ready ≤ gate ≤ issue ≤ complete ≤
/// commit`, with `front_gate ≤ fetch`).
struct TracePoints {
    prev_commit: u64,
    front_gate: u64,
    fence_dominates: bool,
    fetch: u64,
    ready: u64,
    gate: u64,
    issue: u64,
    complete: u64,
    commit: u64,
}

/// An in-progress stream recording (see [`Engine::enable_recording`]).
#[derive(Debug, Default)]
struct Recording {
    insts: Vec<Inst>,
    events: Vec<(usize, StreamEvent)>,
}

/// The streaming out-of-order timing engine.
///
/// See the [module docs](self) for the model. Construct with
/// [`Engine::new`], feed instructions with [`Engine::push`], and obtain
/// [`RunStats`] with [`Engine::finish`].
#[derive(Debug)]
pub struct Engine {
    core: CoreConfig,
    hier: Hierarchy,
    alloc: AddressSpace,
    next_reg: Reg,
    /// Completion cycle of each register's producer.
    ready: Vec<u64>,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    commit_cycle: u64,
    commit_in_cycle: u32,
    last_commit: u64,
    /// Commit times of the most recent `rob_size` instructions, as a ring:
    /// `rob_window[rob_head]` is the oldest entry once the ring is full
    /// (`rob_filled == rob_size`). A flat ring beats a `VecDeque` here —
    /// this is touched on every single push.
    rob_window: Vec<u64>,
    rob_head: usize,
    rob_filled: usize,
    /// Max completion time over all instructions so far.
    all_complete_max: u64,
    /// Max completion time over all *non-custom* instructions so far.
    noncustom_complete_max: u64,
    /// Instructions may not fetch before this (set by fences).
    fence_until: u64,
    scalar_units: Calendar,
    vector_units: Calendar,
    load_ports: Calendar,
    store_ports: Calendar,
    /// The custom (FIVU) units keep a monotonic next-free model: custom ops
    /// are commit-gated, so their ready times are already monotone.
    custom_units: Vec<u64>,
    /// 2-bit saturating counters per data-dependent branch site, indexed by
    /// site id (kernels use small dense ids, so a flat table beats hashing
    /// on the per-branch hot path). Entries start at 2 (weakly taken);
    /// the table grows lazily to the highest site seen.
    predictor: Vec<u8>,
    pushes_since_prune: u32,
    timeline: Option<Timeline>,
    /// Stall-cause accounting and event-trace state (`via-trace`). Always
    /// present; disabled it costs one branch per push and never perturbs
    /// timing, so golden cycle counts are identical with tracing on or off.
    trace: TraceState,
    /// Streaming program verifier (`via-verify`). Always attached in debug
    /// builds (every debug simulation is checked, errors panic at the
    /// offending push); in release builds attached only while thread-local
    /// report capture is enabled, so the hot path pays one `Option` check.
    verifier: Option<Box<Verifier>>,
    /// Whether the attached verifier should flush its reports to the
    /// thread-local capture sink (instead of panicking in debug builds).
    verify_capture: bool,
    /// When recording ([`Engine::enable_recording`]), every pushed
    /// instruction — and every region/marker call, positionally — is also
    /// appended here, to be harvested as a [`CompiledStream`] by
    /// [`Engine::take_compiled`].
    recording: Option<Recording>,
    /// The compile-time verify report of a stream fed through
    /// [`Engine::replay`]; flushed to the capture sink instead of the (then
    /// empty) streaming verifier's report, so captured diagnostics are
    /// bit-identical between the interpreted and compiled paths.
    replayed_report: Option<verify::Report>,
    /// The static-analysis report attached by [`Engine::analyze_compiled`]
    /// for the stream most recently analyzed on this engine. Cleared by
    /// [`Engine::reset`] so a reused engine cannot leak a stale report.
    analysis: Option<Arc<AnalysisReport>>,
    /// Emit-only mode ([`Engine::enable_emit_only`]): pushes skip the
    /// timing model entirely — only verification and stream recording run.
    /// Instruction content never depends on timing (kernels read data, not
    /// cycle counts), so an emit-only recording is bit-identical to a timed
    /// one; the auto-tuner uses this to compile candidate streams cheaply
    /// and prune on the static cycle bound before paying for a replay.
    emit_only: bool,
    stats: RunStats,
}

impl Engine {
    /// Creates an engine with the given core and memory configuration.
    pub fn new(core: CoreConfig, mem: MemConfig) -> Self {
        let verify_capture = verify::capture_enabled();
        let verifier = if verify_capture || cfg!(debug_assertions) {
            Some(Box::new(Verifier::new(VerifyConfig::from_core(&core))))
        } else {
            None
        };
        Engine {
            hier: Hierarchy::new(mem),
            alloc: AddressSpace::new(),
            next_reg: 0,
            ready: Vec::new(),
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            commit_cycle: 0,
            commit_in_cycle: 0,
            last_commit: 0,
            rob_window: vec![0; core.rob_size.max(1)],
            rob_head: 0,
            rob_filled: 0,
            all_complete_max: 0,
            noncustom_complete_max: 0,
            fence_until: 0,
            scalar_units: Calendar::new(core.scalar_alus),
            vector_units: Calendar::new(core.vector_alus),
            load_ports: Calendar::new(core.load_ports),
            store_ports: Calendar::new(core.store_ports),
            custom_units: vec![0; core.custom_units as usize],
            predictor: Vec::new(),
            pushes_since_prune: 0,
            timeline: None,
            trace: TraceState::default(),
            verifier,
            verify_capture,
            recording: None,
            replayed_report: None,
            analysis: None,
            emit_only: false,
            core,
            stats: RunStats::default(),
        }
    }

    /// The core configuration.
    pub fn core_config(&self) -> &CoreConfig {
        &self.core
    }

    /// The memory configuration.
    pub fn mem_config(&self) -> &MemConfig {
        self.hier.config()
    }

    /// The simulated address space (for allocating kernel arrays).
    pub fn alloc_mut(&mut self) -> &mut AddressSpace {
        &mut self.alloc
    }

    /// Attaches a socket-shared LLC ([`crate::mem::SharedLlc`]): this
    /// engine's L2 misses then walk the shared L3 and book the shared DRAM
    /// calendar, contending with every other attached engine. Call before
    /// pushing any instruction.
    pub fn attach_shared_llc(&mut self, shared: Arc<crate::mem::SharedLlc>) {
        self.hier.attach_shared(shared);
    }

    /// Rebases the simulated address space so this engine's allocations
    /// start at `base` (clamped up to [`AddressSpace::BASE`]). A socket
    /// gives each core a disjoint base so working sets never alias in the
    /// shared LLC. Call before any allocation.
    pub fn set_alloc_base(&mut self, base: u64) {
        self.alloc = AddressSpace::with_base(base);
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn reg_ready(&self, r: Reg) -> u64 {
        self.ready.get(r as usize).copied().unwrap_or(0)
    }

    fn set_ready(&mut self, r: Reg, t: u64) {
        let idx = r as usize;
        if idx >= self.ready.len() {
            self.ready.resize(idx + 1, 0);
        }
        self.ready[idx] = t;
    }

    /// Earliest-available custom unit (monotonic model); reserves it for
    /// `occupancy` cycles starting no earlier than `t`. Returns the start.
    fn acquire_custom(pool: &mut [u64], t: u64, occupancy: u64) -> u64 {
        let (idx, &free) = pool
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("unit pool must not be empty");
        let start = t.max(free);
        pool[idx] = start + occupancy;
        start
    }

    /// Pushes one instruction through the model and returns its completion
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if a [`Op::Custom`] instruction is pushed on a core configured
    /// with `custom_units == 0` (the baseline has no FIVU).
    pub fn push(&mut self, inst: Inst) -> u64 {
        // --- via-verify: streaming static checks -------------------------
        // `None` in release builds unless report capture is on, so the
        // cost there is a single branch.
        if let Some(v) = self.verifier.as_deref_mut() {
            let fresh = v.check(&inst);
            if cfg!(debug_assertions) && !self.verify_capture {
                if let Some(d) = fresh.iter().find(|d| d.severity() == Severity::Error) {
                    panic!(
                        "via-verify rejected the instruction stream:\n{}",
                        d.render()
                    );
                }
            }
        }
        let complete = if self.emit_only {
            // Emit-only: count the instruction (so `stream.len() ==
            // stats.instructions` holds on recordings) but skip the timing
            // model. Completion cycle 0 is fine — kernels thread register
            // deps, never completion times, through their emission.
            self.stats.instructions += 1;
            0
        } else {
            self.push_core(&inst)
        };
        if let Some(rec) = &mut self.recording {
            rec.insts.push(inst);
        }
        complete
    }

    /// The timing model proper: everything [`Engine::push`] does after the
    /// verifier check. [`Engine::replay`] drives this directly for every
    /// pre-decoded instruction of a [`CompiledStream`], so interpreted and
    /// replayed runs share one code path and produce bit-identical cycles,
    /// stall attribution, and statistics.
    fn push_core(&mut self, inst: &Inst) -> u64 {
        // --- via-trace: pre-push snapshots ------------------------------
        // One branch when tracing is off; none of this feeds timing.
        let tracing = self.trace.enabled();
        let prev_commit = self.last_commit;

        // --- fetch: width and ROB admission ----------------------------
        let rob_ready = if self.rob_filled == self.core.rob_size {
            self.rob_window[self.rob_head]
        } else {
            0
        };
        let fence_dominates = self.fence_until >= rob_ready;
        let earliest_fetch = rob_ready.max(self.fence_until);
        if self.fetch_cycle < earliest_fetch {
            self.fetch_cycle = earliest_fetch;
            self.fetch_in_cycle = 0;
        }
        if self.fetch_in_cycle >= self.core.fetch_width {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        self.fetch_in_cycle += 1;
        let fetch_t = self.fetch_cycle;

        // Periodically discard calendar history below the fetch frontier
        // (no later instruction can issue before its fetch time).
        self.pushes_since_prune += 1;
        if self.pushes_since_prune >= 4096 {
            self.pushes_since_prune = 0;
            self.scalar_units.prune_below(fetch_t);
            self.vector_units.prune_below(fetch_t);
            self.load_ports.prune_below(fetch_t);
            self.store_ports.prune_below(fetch_t);
            self.hier.prune_below(fetch_t);
        }

        // --- dependences ------------------------------------------------
        let mut dep_t = 0u64;
        for &r in inst.srcs.as_slice() {
            dep_t = dep_t.max(self.reg_ready(r));
        }
        let ready_t = fetch_t.max(dep_t);

        // --- issue + execute --------------------------------------------
        let front_gate = earliest_fetch.min(fetch_t);
        let (dram_wait0, port_wait0) = if tracing {
            self.hier.clear_level_mark();
            (self.hier.dram_wait_cycles(), self.hier.port_wait_cycles())
        } else {
            (0, 0)
        };
        // Issue time (unit acquired) and the at-commit gate, captured for
        // attribution; plain u64 stores, free enough to keep unconditional.
        let mut tr_issue = ready_t;
        let mut tr_gate = ready_t;
        let complete = match &inst.op {
            Op::Scalar { kind } => {
                self.stats.scalar_ops += 1;
                let lat = match kind {
                    AluKind::Int => self.core.scalar_latency,
                    AluKind::FpAdd | AluKind::FpMul => self.core.vec_alu_latency,
                    AluKind::FpFma => self.core.vec_fma_latency,
                } as u64;
                let start = self.scalar_units.book(ready_t);
                tr_issue = start;
                start + lat
            }
            Op::Vec { kind } => {
                self.stats.vector_ops += 1;
                let lat = match kind {
                    VecOpKind::Add | VecOpKind::Mul => self.core.vec_alu_latency,
                    VecOpKind::Fma => self.core.vec_fma_latency,
                    VecOpKind::Reduce => self.core.vec_reduce_latency,
                    VecOpKind::Permute | VecOpKind::Blend => self.core.vec_permute_latency,
                    VecOpKind::Compare => self.core.vec_alu_latency,
                    VecOpKind::ConflictDetect => self.core.vec_conflict_latency,
                } as u64;
                let start = self.vector_units.book(ready_t);
                tr_issue = start;
                start + lat
            }
            Op::Load { addr, bytes } => {
                self.stats.loads += 1;
                self.mem_access(*addr, *bytes, false, ready_t)
            }
            Op::Store { addr, bytes } => {
                self.stats.stores += 1;
                self.mem_access(*addr, *bytes, true, ready_t)
            }
            Op::Gather { addrs, elem_bytes } => {
                self.stats.gathers += 1;
                self.indexed_access(addrs.as_slice(), *elem_bytes, false, ready_t)
            }
            Op::Scatter { addrs, elem_bytes } => {
                self.stats.scatters += 1;
                self.indexed_access(addrs.as_slice(), *elem_bytes, true, ready_t)
            }
            Op::Custom {
                occupancy,
                latency,
                at_commit,
            } => {
                assert!(
                    !self.custom_units.is_empty(),
                    "custom op pushed on a core with no custom unit (baseline \
                     cores have no FIVU)"
                );
                self.stats.custom_ops += 1;
                let gate = if *at_commit {
                    // Commit-time execution (paper §IV-E): all older
                    // non-custom instructions must have completed. Older
                    // custom ops gate through unit occupancy, which lets
                    // back-to-back VIA instructions pipeline.
                    ready_t.max(self.noncustom_complete_max)
                } else {
                    ready_t
                };
                let occ = (*occupancy).max(1) as u64;
                let start = Self::acquire_custom(&mut self.custom_units, gate, occ);
                tr_gate = gate;
                tr_issue = start;
                self.stats.custom_busy_cycles += occ;
                start + (*latency).max(1) as u64
            }
            Op::Branch { taken, site } => {
                self.stats.branches += 1;
                // 2-bit saturating counter, initialized weakly taken.
                let idx = *site as usize;
                if idx >= self.predictor.len() {
                    self.predictor.resize(idx + 1, 2);
                }
                let counter = &mut self.predictor[idx];
                let predicted = *counter >= 2;
                if *taken {
                    *counter = (*counter + 1).min(3);
                } else {
                    *counter = counter.saturating_sub(1);
                }
                // The branch resolves one cycle after its sources are ready
                // (compare + redirect decision).
                let start = self.scalar_units.book(ready_t);
                tr_issue = start;
                let resolve = start + self.core.scalar_latency as u64;
                if predicted != *taken {
                    self.stats.mispredicts += 1;
                    // Redirect: younger instructions fetch only after the
                    // resolve plus the front-end refill penalty.
                    self.fence_until = self
                        .fence_until
                        .max(resolve + self.core.mispredict_penalty as u64);
                }
                resolve
            }
            Op::Delay { cycles } => ready_t + *cycles as u64,
            Op::Fence => {
                self.fence_until = self.all_complete_max.max(fetch_t);
                fetch_t.max(self.all_complete_max)
            }
        };

        // --- bookkeeping --------------------------------------------------
        if let Some(dst) = inst.dst {
            self.set_ready(dst, complete);
        }
        self.all_complete_max = self.all_complete_max.max(complete);
        if !matches!(inst.op, Op::Custom { .. }) {
            self.noncustom_complete_max = self.noncustom_complete_max.max(complete);
        }

        // --- commit: in order, width-limited -----------------------------
        let mut commit_t = complete.max(self.last_commit);
        if commit_t > self.commit_cycle {
            self.commit_cycle = commit_t;
            self.commit_in_cycle = 0;
        }
        if self.commit_in_cycle >= self.core.commit_width {
            self.commit_cycle += 1;
            self.commit_in_cycle = 0;
            commit_t = self.commit_cycle;
        }
        self.commit_in_cycle += 1;
        commit_t = commit_t.max(self.commit_cycle);
        self.last_commit = commit_t;
        // Overwrite the oldest ring entry (which `rob_ready` above already
        // consumed this push) and advance.
        self.rob_window[self.rob_head] = commit_t;
        self.rob_head += 1;
        if self.rob_head == self.core.rob_size {
            self.rob_head = 0;
        }
        if self.rob_filled < self.core.rob_size {
            self.rob_filled += 1;
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.record(TimelineEntry {
                index: self.stats.instructions,
                kind: inst.op.tag(),
                fetch: fetch_t,
                ready: ready_t,
                complete,
                commit: commit_t,
            });
        }
        if tracing {
            self.record_trace(
                &inst.op,
                TracePoints {
                    prev_commit,
                    front_gate,
                    fence_dominates,
                    fetch: fetch_t,
                    ready: ready_t,
                    gate: tr_gate,
                    issue: tr_issue,
                    complete,
                    commit: commit_t,
                },
                dram_wait0,
                port_wait0,
            );
        }
        self.stats.instructions += 1;
        complete
    }

    /// Attributes this push's commit-frontier delta to stall causes and
    /// records the lifecycle event. `points` carries the instruction's
    /// monotone lifecycle boundaries; each adjacent pair, clipped to
    /// `(prev_commit, commit]`, is charged to exactly one cause, so the
    /// attribution tiles the frontier delta exactly (the conservation
    /// invariant).
    fn record_trace(&mut self, op: &Op, points: TracePoints, dram_wait0: u64, port_wait0: u64) {
        let class = OpClass::of(op);
        let TracePoints {
            prev_commit,
            front_gate,
            fence_dominates,
            fetch,
            ready,
            gate,
            issue,
            complete,
            commit,
        } = points;
        if self.trace.accounting {
            let dram_delta = self.hier.dram_wait_cycles() - dram_wait0;
            let port_delta = self.hier.port_wait_cycles() - port_wait0;
            // Length of a lifecycle segment clipped to the frontier delta
            // `(prev_commit, commit]` (charging 0 cycles is harmless).
            let clip = |lo: u64, hi: u64| hi.min(commit).saturating_sub(lo.max(prev_commit));
            let tr = &mut self.trace;
            // Frontend: waiting on the ROB / a redirect, then fetch-width
            // serialization up to the fetch cycle.
            let front_cause = if fence_dominates {
                StallCause::BranchRedirect
            } else {
                StallCause::RobFull
            };
            tr.charge(class, front_cause, clip(prev_commit, front_gate));
            tr.charge(class, StallCause::FetchWidth, clip(front_gate, fetch));
            // Operand wait.
            tr.charge(class, StallCause::Dependency, clip(fetch, ready));
            // Execution window (ready → complete), split per op class.
            match class {
                OpClass::Load | OpClass::Store | OpClass::Gather | OpClass::Scatter => {
                    // Split the memory window between DRAM-channel queuing,
                    // port serialization, and transfer time, using the
                    // hierarchy's wait-counter deltas clipped to the window.
                    let w = clip(ready, complete);
                    let dram = dram_delta.min(w);
                    let port = port_delta.min(w - dram);
                    let port_cause = if matches!(class, OpClass::Store | OpClass::Scatter) {
                        StallCause::StorePort
                    } else {
                        StallCause::LoadPort
                    };
                    tr.charge(class, StallCause::DramBandwidth, dram);
                    tr.charge(class, port_cause, port);
                    tr.charge(class, StallCause::Active, w - dram - port);
                }
                OpClass::Custom => {
                    tr.charge(class, StallCause::CommitGate, clip(ready, gate));
                    tr.charge(class, StallCause::FuSlot, clip(gate, issue));
                    tr.charge(class, StallCause::Active, clip(issue, complete));
                }
                OpClass::Delay => {
                    tr.charge(class, StallCause::StoreBufferDrain, clip(ready, complete));
                }
                OpClass::Fence => {
                    tr.charge(class, StallCause::Dependency, clip(ready, complete));
                }
                _ => {
                    tr.charge(class, StallCause::FuSlot, clip(ready, issue));
                    tr.charge(class, StallCause::Active, clip(issue, complete));
                }
            }
            // In-order commit behind the frontier and commit-width limits.
            tr.charge(class, StallCause::CommitWidth, clip(complete, commit));
        }
        if self.trace.events.is_some() {
            let level = match class {
                OpClass::Load | OpClass::Store | OpClass::Gather | OpClass::Scatter => {
                    MemLevel::from_mark(self.hier.level_mark().max(1))
                }
                _ => MemLevel::None,
            };
            let index = self.stats.instructions;
            let region = self.trace.current;
            if let Some(ring) = &mut self.trace.events {
                ring.record(TraceEvent::Inst {
                    index,
                    class,
                    region,
                    fetch,
                    issue,
                    complete,
                    commit,
                    level,
                });
            }
        }
    }

    fn mem_access(&mut self, addr: u64, bytes: u32, write: bool, t: u64) -> u64 {
        let ports = if write {
            &mut self.store_ports
        } else {
            &mut self.load_ports
        };
        self.hier.access_span(addr, bytes, write, t, ports)
    }

    fn indexed_access(&mut self, addrs: &[u64], elem_bytes: u32, write: bool, t: u64) -> u64 {
        self.stats.indexed_elems += addrs.len() as u64;
        let sb_latency = self.hier.config().l1.latency as u64;
        let mut done = t;
        for &addr in addrs {
            let start = if write {
                self.store_ports.book(t)
            } else {
                self.load_ports.book(t)
            };
            self.hier.note_port_wait(start.saturating_sub(t));
            let lat = self.hier.access(addr, write, start);
            let effective = if write { sb_latency } else { lat };
            done = done.max(start + effective);
            let _ = elem_bytes;
        }
        done + self.core.gather_overhead as u64
    }

    /// Starts recording the most recent `capacity` instructions' lifecycle
    /// timestamps (fetch/ready/complete/commit). Off by default — the
    /// sweeps retire millions of instructions; use a bounded window.
    pub fn enable_timeline(&mut self, capacity: usize) {
        self.timeline = Some(Timeline::new(capacity));
    }

    /// The recorded timeline, if [`Engine::enable_timeline`] was called.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    // ---- via-trace: stall accounting and event traces ------------------

    /// Turns on stall-cause accounting: from now on every commit-frontier
    /// cycle is attributed to one [`StallCause`] per opcode class and per
    /// kernel region. Never perturbs timing; read the result with
    /// [`Engine::stall_report`].
    pub fn enable_stall_accounting(&mut self) {
        self.trace.accounting = true;
        self.trace.ensure_root();
    }

    /// Whether stall-cause accounting is on.
    pub fn stall_accounting_enabled(&self) -> bool {
        self.trace.accounting
    }

    /// Turns on event tracing: the most recent `capacity` instruction
    /// lifecycles (plus region and marker events) are kept in a ring and
    /// can be exported with [`Engine::chrome_trace`].
    pub fn enable_trace_events(&mut self, capacity: usize) {
        self.trace.events = Some(EventRing::new(capacity));
        self.trace.ensure_root();
        self.hier.clear_level_mark();
    }

    /// The recorded event ring, if [`Engine::enable_trace_events`] was
    /// called.
    pub fn trace_events(&self) -> Option<&EventRing> {
        self.trace.events.as_ref()
    }

    /// Enters a named kernel region (row loop, accumulate, flush, …);
    /// subsequent attribution is filed under it until the matching
    /// [`Engine::region_end`]. Regions nest; a no-op while tracing is off,
    /// so kernels label phases unconditionally.
    pub fn region(&mut self, name: &'static str) {
        if let Some(rec) = &mut self.recording {
            rec.events
                .push((rec.insts.len(), StreamEvent::RegionBegin(name)));
        }
        if !self.trace.enabled() {
            return;
        }
        let id = self.trace.intern(name);
        self.trace.stack.push(self.trace.current);
        self.trace.current = id;
        let at = self.last_commit;
        if let Some(ring) = &mut self.trace.events {
            ring.record(TraceEvent::RegionBegin { region: id, at });
        }
    }

    /// Leaves the innermost open region (no-op at top level or while
    /// tracing is off).
    pub fn region_end(&mut self) {
        if let Some(rec) = &mut self.recording {
            rec.events.push((rec.insts.len(), StreamEvent::RegionEnd));
        }
        if !self.trace.enabled() {
            return;
        }
        if let Some(prev) = self.trace.stack.pop() {
            let at = self.last_commit;
            let current = self.trace.current;
            if let Some(ring) = &mut self.trace.events {
                ring.record(TraceEvent::RegionEnd {
                    region: current,
                    at,
                });
            }
            self.trace.current = prev;
        }
    }

    /// Records an instant marker (e.g. an SSPM mode transition) at the
    /// current commit frontier; a no-op unless event tracing is on.
    pub fn trace_marker(&mut self, name: &'static str) {
        if let Some(rec) = &mut self.recording {
            rec.events
                .push((rec.insts.len(), StreamEvent::Marker(name)));
        }
        let at = self.last_commit;
        if let Some(ring) = &mut self.trace.events {
            ring.record(TraceEvent::Marker { name, at });
        }
    }

    /// A snapshot of the stall-cause accounting so far, or `None` unless
    /// [`Engine::enable_stall_accounting`] was called. The report's
    /// [`attributed`](StallReport::attributed) total equals its
    /// `total_cycles` exactly (conservation).
    pub fn stall_report(&self) -> Option<StallReport> {
        if !self.trace.accounting {
            return None;
        }
        Some(StallReport {
            total_cycles: self.last_commit.max(self.all_complete_max),
            by_class: self.trace.by_class,
            regions: self
                .trace
                .regions
                .iter()
                .map(|r| RegionStalls {
                    name: r.name.to_string(),
                    cycles: r.cycles,
                })
                .collect(),
        })
    }

    /// The recorded event ring serialized as Chrome trace-event JSON
    /// (loadable in Perfetto), or `None` unless
    /// [`Engine::enable_trace_events`] was called.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace
            .events
            .as_ref()
            .map(|ring| trace::chrome_trace_json(ring, |id| self.trace.region_name(id)))
    }

    /// Whether a verifier is attached (always true in debug builds; true in
    /// release only while [`verify::capture_guard`] is active). `via-core`
    /// uses this to skip building diagnostics that would be dropped.
    pub fn verify_active(&self) -> bool {
        self.verifier.is_some()
    }

    /// The verifier's report so far, if a verifier is attached.
    pub fn verify_report(&self) -> Option<&verify::Report> {
        self.verifier.as_deref().map(Verifier::report)
    }

    /// Routes an externally produced diagnostic (e.g. `via-core`'s SSPM
    /// mode checker) into the attached verifier, stamped with the current
    /// instruction index. In debug builds (without capture) an
    /// error-severity diagnostic panics, mirroring [`Engine::push`].
    pub fn report_diag(&mut self, diag: verify::Diag) {
        if cfg!(debug_assertions) && !self.verify_capture && diag.severity() == Severity::Error {
            panic!(
                "via-verify rejected the instruction stream:\n{}",
                diag.render()
            );
        }
        if let Some(v) = self.verifier.as_deref_mut() {
            v.push_external(diag);
        }
    }

    // ---- compile / replay (via-sim::compile) ---------------------------

    /// Starts recording the pushed instruction stream so it can be
    /// harvested with [`Engine::take_compiled`]. Also attaches a verifier
    /// if none is present (release builds without capture), so the
    /// compiled stream's one-shot verify report carries the same
    /// diagnostics — including externally routed ones like `via-core`'s
    /// SSPM checks — that a debug interpreted run would see.
    pub fn enable_recording(&mut self) {
        if self.verifier.is_none() {
            self.verifier = Some(Box::new(Verifier::new(VerifyConfig::from_core(&self.core))));
        }
        self.recording = Some(Recording::default());
    }

    /// Whether the engine is recording for [`Engine::take_compiled`].
    pub fn recording_enabled(&self) -> bool {
        self.recording.is_some()
    }

    /// Puts the engine in *emit-only* mode: subsequent pushes are verified
    /// and (if recording) captured, but the timing model is skipped and
    /// every push reports completion cycle 0. Because kernels construct
    /// instructions from data only — completion cycles feed nothing but
    /// timing — the recorded stream is bit-identical to a timed run's.
    ///
    /// This is the auto-tuner's fast compile path: emit a candidate
    /// variant's stream without cache/calendar work, take its static
    /// cycle lower bound from [`analyze`], and only replay (full timing)
    /// the candidates the bound cannot rule out. Statistics other than
    /// the instruction count are meaningless on an emit-only run.
    /// Cleared by [`Engine::reset`].
    pub fn enable_emit_only(&mut self) {
        self.emit_only = true;
    }

    /// Whether emit-only mode is on.
    pub fn emit_only_enabled(&self) -> bool {
        self.emit_only
    }

    /// Harvests the recorded stream as a [`CompiledStream`] (turning
    /// recording off), or `None` if [`Engine::enable_recording`] was never
    /// called. Call before [`Engine::finish`]/[`Engine::reset`]. The
    /// verify report is *cloned*, not taken: a capturing recorded run
    /// still flushes its own report exactly like an interpreted one.
    pub fn take_compiled(&mut self) -> Option<CompiledStream> {
        let rec = self.recording.take()?;
        let report = self
            .verifier
            .as_deref()
            .map(|v| v.report().clone())
            .unwrap_or_default();
        Some(CompiledStream::from_recording(
            rec.insts, rec.events, report,
        ))
    }

    /// Runs the static analyzer over a compiled stream with this engine's
    /// machine configuration and attaches the report to the engine (read
    /// it back with [`Engine::analysis_report`]). The attachment is
    /// per-run state: [`Engine::reset`] clears it, so a reused engine can
    /// never serve a stale report for a different stream.
    pub fn analyze_compiled(&mut self, stream: &CompiledStream) -> Arc<AnalysisReport> {
        let cfg = AnalyzeConfig::from_machine(&self.core, self.hier.config());
        let report = Arc::new(analyze::analyze(stream, &cfg));
        self.analysis = Some(report.clone());
        report
    }

    /// The report attached by the most recent [`Engine::analyze_compiled`]
    /// on this run, if any.
    pub fn analysis_report(&self) -> Option<&Arc<AnalysisReport>> {
        self.analysis.as_ref()
    }

    /// Replays a compiled stream through the timing model: a tight loop
    /// over the pre-decoded instructions with no verifier work (the stream
    /// was verified once at compile). Returns the last instruction's
    /// completion cycle (0 for an empty stream). Cycles, stall attribution
    /// and statistics are bit-identical to pushing the same instructions.
    ///
    /// The stream's compile-time verify report stands in for the streaming
    /// verifier's: under capture it is flushed verbatim at
    /// [`Engine::finish`]/[`Engine::reset`], and in debug builds without
    /// capture an error-carrying stream panics here, mirroring
    /// [`Engine::push`]. One stream per run — reset between replays.
    ///
    /// # Panics
    ///
    /// Panics in debug builds (without capture) if `stream`'s verify
    /// report contains an error-severity diagnostic.
    pub fn replay(&mut self, stream: &CompiledStream) -> u64 {
        if cfg!(debug_assertions) && !self.verify_capture {
            if let Some(d) = stream
                .verify()
                .diags
                .iter()
                .find(|d| d.severity() == Severity::Error)
            {
                panic!("via-verify rejected the compiled stream:\n{}", d.render());
            }
        }
        self.replayed_report = Some(stream.verify().clone());
        let mut last = 0;
        let mut events = stream.events().iter().peekable();
        for (i, inst) in stream.insts().iter().enumerate() {
            while let Some(&&(pos, event)) = events.peek() {
                if pos > i {
                    break;
                }
                events.next();
                self.apply_stream_event(event);
            }
            last = self.push_core(inst);
        }
        for &(_, event) in events {
            self.apply_stream_event(event);
        }
        crate::telemetry::record_replayed(stream.len() as u64);
        last
    }

    /// Re-issues a recorded region/marker call at its stream position, so
    /// replayed stall attribution and event traces carry the same region
    /// structure as the interpreted run.
    fn apply_stream_event(&mut self, event: StreamEvent) {
        match event {
            StreamEvent::RegionBegin(name) => self.region(name),
            StreamEvent::RegionEnd => self.region_end(),
            StreamEvent::Marker(name) => self.trace_marker(name),
        }
    }

    /// Flushes the run's verify report to the thread-local capture sink
    /// (when capture is on) and clears the streaming state. A replayed
    /// run's report is its stream's compile-time report; otherwise it is
    /// whatever the attached verifier accumulated.
    fn flush_verifier(&mut self) {
        let replayed = self.replayed_report.take();
        if self.verify_capture {
            if let Some(report) = replayed {
                verify::submit_report(report);
            } else if let Some(v) = self.verifier.as_deref_mut() {
                verify::submit_report(v.take_report());
            }
        }
        if let Some(v) = self.verifier.as_deref_mut() {
            v.reset();
        }
    }

    /// Returns the engine to its just-constructed state while keeping its
    /// internal allocations (register-ready table, ROB window, cache set
    /// storage), so a sweep can reuse one engine across many runs instead
    /// of reconstructing per run. Timeline and stream recording are turned
    /// off.
    pub fn reset(&mut self) {
        crate::telemetry::record_instructions(self.stats.instructions);
        self.flush_verifier();
        self.hier.reset();
        self.alloc.reset();
        self.next_reg = 0;
        self.ready.clear();
        self.fetch_cycle = 0;
        self.fetch_in_cycle = 0;
        self.commit_cycle = 0;
        self.commit_in_cycle = 0;
        self.last_commit = 0;
        self.rob_head = 0;
        self.rob_filled = 0;
        self.all_complete_max = 0;
        self.noncustom_complete_max = 0;
        self.fence_until = 0;
        self.scalar_units.reset();
        self.vector_units.reset();
        self.load_ports.reset();
        self.store_ports.reset();
        self.custom_units.iter_mut().for_each(|t| *t = 0);
        self.predictor.clear();
        self.pushes_since_prune = 0;
        self.timeline = None;
        self.recording = None;
        self.analysis = None;
        self.emit_only = false;
        // Trace state must not leak between back-to-back runs: zero the
        // accumulators, empty the ring, and unwind the region stack, while
        // keeping the enabled flags so a reused engine keeps tracing.
        self.trace.clear();
        self.stats = RunStats::default();
    }

    /// Finalizes the run: drains the pipeline and returns the statistics.
    pub fn finish(mut self) -> RunStats {
        crate::telemetry::record_instructions(self.stats.instructions);
        self.flush_verifier();
        self.stats.cycles = self.last_commit.max(self.all_complete_max);
        self.hier.fill_stats(&mut self.stats);
        self.stats
    }

    /// A snapshot of the statistics so far (cycles = committed so far).
    pub fn stats_so_far(&self) -> RunStats {
        let mut stats = self.stats.clone();
        stats.cycles = self.last_commit.max(self.all_complete_max);
        self.hier.fill_stats(&mut stats);
        stats
    }

    // ---- convenience builders used by the kernel crates ----------------

    /// Pushes a scalar op and returns its destination register.
    pub fn scalar_op(&mut self, kind: AluKind, srcs: &[Reg]) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::scalar(kind, srcs, Some(dst)));
        dst
    }

    /// Pushes a unit-stride load and returns its destination register.
    pub fn load(&mut self, addr: u64, bytes: u32) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::load(addr, bytes, dst));
        dst
    }

    /// Pushes a load that additionally depends on `deps` (pointer chasing /
    /// store-to-load ordering).
    pub fn load_dep(&mut self, addr: u64, bytes: u32, deps: &[Reg]) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::load_dep(addr, bytes, deps, dst));
        dst
    }

    /// Pushes a unit-stride store of `srcs`.
    pub fn store(&mut self, addr: u64, bytes: u32, srcs: &[Reg]) {
        self.push(Inst::store(addr, bytes, srcs));
    }

    /// Pushes a gather dependent on `deps` and returns its destination.
    /// Addresses are borrowed — kernels can reuse one scratch buffer across
    /// the whole sweep instead of allocating per instruction.
    pub fn gather(&mut self, addrs: &[u64], elem_bytes: u32, deps: &[Reg]) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::gather(addrs, elem_bytes, deps, dst));
        dst
    }

    /// Pushes a scatter of `srcs` to `addrs` (addresses borrowed, as with
    /// [`Engine::gather`]).
    pub fn scatter(&mut self, addrs: &[u64], elem_bytes: u32, srcs: &[Reg]) {
        self.push(Inst::scatter(addrs, elem_bytes, srcs));
    }

    /// Pushes a vector op and returns its destination register.
    pub fn vec_op(&mut self, kind: VecOpKind, srcs: &[Reg]) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::vec(kind, srcs, Some(dst)));
        dst
    }

    /// Pushes a custom-unit op and returns its destination register.
    pub fn custom_op(
        &mut self,
        occupancy: u32,
        latency: u32,
        at_commit: bool,
        srcs: &[Reg],
    ) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::custom(occupancy, latency, at_commit, srcs, Some(dst)));
        dst
    }

    /// Pushes a data-dependent branch whose outcome depends on `deps`.
    pub fn branch(&mut self, taken: bool, site: u32, deps: &[Reg]) {
        self.push(Inst::branch(taken, site, deps));
    }

    /// Pushes a pure timing delay dependent on `deps`; returns a register
    /// that becomes ready `cycles` after the deps complete.
    pub fn delay(&mut self, cycles: u32, deps: &[Reg]) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::delay(cycles, deps, dst));
        dst
    }

    /// Pushes a full serialization fence.
    pub fn fence(&mut self) {
        self.push(Inst::fence());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(CoreConfig::default(), MemConfig::default())
    }

    fn engine_with_custom() -> Engine {
        Engine::new(
            CoreConfig::default().with_custom_unit(),
            MemConfig::default(),
        )
    }

    #[test]
    fn independent_scalars_overlap() {
        let mut e = engine();
        // 100 independent single-cycle ops on 4 ALUs at fetch width 4
        // should take ~25-30 cycles, not 100.
        for _ in 0..100 {
            e.scalar_op(AluKind::Int, &[]);
        }
        let stats = e.finish();
        assert!(stats.cycles < 60, "cycles = {}", stats.cycles);
        assert!(stats.ipc() > 1.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut e = engine();
        let mut r = e.scalar_op(AluKind::Int, &[]);
        for _ in 0..99 {
            r = e.scalar_op(AluKind::Int, &[r]);
        }
        let stats = e.finish();
        assert!(stats.cycles >= 100, "cycles = {}", stats.cycles);
    }

    #[test]
    fn fp_chain_pays_fp_latency() {
        let mut e = engine();
        let mut r = e.scalar_op(AluKind::FpAdd, &[]);
        for _ in 0..9 {
            r = e.scalar_op(AluKind::FpAdd, &[r]);
        }
        let stats = e.finish();
        // 10 x 3-cycle dependent adds ≥ 30 cycles.
        assert!(stats.cycles >= 30, "cycles = {}", stats.cycles);
    }

    #[test]
    fn rob_limits_runahead() {
        let small_rob = CoreConfig {
            rob_size: 8,
            ..CoreConfig::default()
        };
        let mut slow = Engine::new(small_rob, MemConfig::default());
        let mut fast = engine();
        // Long-latency cold loads interleaved with cheap ops: a small ROB
        // cannot run ahead.
        for i in 0..64u64 {
            slow.load(0x10_0000 + i * 4096, 8);
            for _ in 0..3 {
                slow.scalar_op(AluKind::Int, &[]);
            }
        }
        for i in 0..64u64 {
            fast.load(0x10_0000 + i * 4096, 8);
            for _ in 0..3 {
                fast.scalar_op(AluKind::Int, &[]);
            }
        }
        let (s, f) = (slow.finish(), fast.finish());
        assert!(
            s.cycles > f.cycles,
            "small ROB {} should be slower than large {}",
            s.cycles,
            f.cycles
        );
    }

    #[test]
    fn warm_loads_are_fast() {
        let mut e = engine();
        e.load(0x1000, 8);
        e.fence();
        let before = e.stats_so_far().cycles;
        for _ in 0..10 {
            e.load(0x1000, 8);
        }
        let stats = e.finish();
        // All hits: a handful of cycles beyond the fence point.
        assert!(stats.cycles - before < 30, "warm loads too slow");
        assert_eq!(stats.l1.hits, 10);
    }

    #[test]
    fn gather_costs_at_least_paper_floor() {
        let mut e = engine();
        // Warm the lines first.
        for i in 0..4u64 {
            e.load(0x2000 + i * 8, 8);
        }
        e.fence();
        let t0 = e.stats_so_far().cycles;
        let addrs: Vec<u64> = (0..4u64).map(|i| 0x2000 + i * 8).collect();
        let done = e.push(Inst::gather(addrs, 8, &[], 0));
        // All-hit AVX2 gather ≥ 22 cycles (paper §III-A).
        assert!(done - t0 >= 22, "gather latency {} < 22", done - t0);
    }

    #[test]
    fn gather_is_slower_than_vector_load() {
        let mut e1 = engine();
        let addrs: Vec<u64> = (0..4u64).map(|i| 0x3000 + i * 8).collect();
        e1.push(Inst::gather(addrs, 8, &[], 0));
        let g = e1.finish();

        let mut e2 = engine();
        e2.load(0x3000, 32);
        let l = e2.finish();
        assert!(g.cycles > l.cycles);
    }

    #[test]
    fn custom_op_requires_custom_unit() {
        let mut e = engine_with_custom();
        let done = e.custom_op(1, 3, false, &[]);
        let _ = done;
        let stats = e.finish();
        assert_eq!(stats.custom_ops, 1);
    }

    #[test]
    #[should_panic(expected = "no custom unit")]
    fn custom_op_panics_on_baseline() {
        let mut e = engine();
        e.custom_op(1, 3, false, &[]);
    }

    #[test]
    fn at_commit_waits_for_older_noncustom() {
        let mut e = engine_with_custom();
        // A slow cold load...
        e.load(0xdead_000, 8);
        // ...blocks the commit-serialized custom op even without a register
        // dependence.
        let done = e.push(Inst::custom(1, 1, true, &[], None));
        assert!(
            done > MemConfig::default().dram_latency as u64,
            "at_commit op finished at {done}, before the cold load"
        );
    }

    #[test]
    fn at_commit_custom_ops_pipeline_among_themselves() {
        let mut e = engine_with_custom();
        // Many commit-serialized custom ops with occupancy 1, latency 10:
        // they pipeline (1/cycle), so 50 ops take ~60 cycles, not 500.
        for _ in 0..50 {
            e.push(Inst::custom(1, 10, true, &[], None));
        }
        let stats = e.finish();
        assert!(stats.cycles < 150, "cycles = {}", stats.cycles);
    }

    #[test]
    fn non_commit_custom_issues_early() {
        // A non-at_commit custom op should not wait for an older slow load.
        let mut e = engine_with_custom();
        e.load(0xbeef_000, 8);
        let done = e.push(Inst::custom(1, 1, false, &[], None));
        assert!(done < MemConfig::default().dram_latency as u64);
    }

    #[test]
    fn fence_serializes() {
        let mut e = engine();
        e.load(0x8000_000, 8); // cold: slow
        e.fence();
        let r = e.scalar_op(AluKind::Int, &[]);
        let _ = r;
        let stats = e.finish();
        let dram = MemConfig::default().dram_latency as u64;
        assert!(stats.cycles > dram, "post-fence work started too early");
    }

    #[test]
    fn store_load_dependency_through_registers() {
        let mut e = engine();
        let v = e.load(0x100, 8);
        e.store(0x200, 8, &[v]);
        // Model store-to-load forwarding delay by passing the stored value
        // register as a dep of the reload.
        let reload = e.load_dep(0x200, 8, &[v]);
        let _ = reload;
        let stats = e.finish();
        assert!(stats.cycles > 0);
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn multi_line_vector_load_touches_two_lines() {
        let mut e = engine();
        e.load(0x1000 - 8, 32); // crosses a 64B boundary
        let stats = e.finish();
        assert_eq!(stats.l1.misses, 2);
    }

    #[test]
    fn stats_count_op_classes() {
        let mut e = engine_with_custom();
        e.scalar_op(AluKind::Int, &[]);
        e.vec_op(VecOpKind::Fma, &[]);
        e.load(0x100, 8);
        e.store(0x200, 8, &[]);
        e.push(Inst::gather(vec![0x300, 0x400], 8, &[], 1));
        e.push(Inst::scatter(vec![0x500], 8, &[]));
        e.custom_op(1, 1, false, &[]);
        let stats = e.finish();
        assert_eq!(stats.scalar_ops, 1);
        assert_eq!(stats.vector_ops, 1);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.gathers, 1);
        assert_eq!(stats.scatters, 1);
        assert_eq!(stats.indexed_elems, 3);
        assert_eq!(stats.custom_ops, 1);
        assert_eq!(stats.instructions, 7);
    }

    #[test]
    fn commit_width_bounds_ipc() {
        let mut e = engine();
        for _ in 0..1000 {
            e.scalar_op(AluKind::Int, &[]);
        }
        let stats = e.finish();
        assert!(stats.ipc() <= CoreConfig::default().commit_width as f64 + 0.1);
    }

    #[test]
    fn predictable_branches_are_cheap() {
        // Always-taken branch: the 2-bit counter locks on after warmup.
        let mut e = engine();
        for _ in 0..200 {
            let r = e.scalar_op(AluKind::Int, &[]);
            e.branch(true, 7, &[r]);
        }
        let stats = e.finish();
        assert!(
            stats.mispredicts <= 1,
            "mispredicts = {}",
            stats.mispredicts
        );
        assert!(stats.cycles < 200, "cycles = {}", stats.cycles);
    }

    #[test]
    fn alternating_branches_pay_penalties() {
        let mut e = engine();
        for i in 0..200 {
            let r = e.scalar_op(AluKind::Int, &[]);
            e.branch(i % 2 == 0, 9, &[r]);
        }
        let stats = e.finish();
        assert!(
            stats.mispredicts > 50,
            "alternating pattern should mispredict often: {}",
            stats.mispredicts
        );
        // Each mispredict costs ~resolve + penalty.
        assert!(stats.cycles > 200 * 5, "cycles = {}", stats.cycles);
    }

    #[test]
    fn mispredict_cost_includes_late_resolve() {
        // A branch depending on a cold load resolves late; the redirect
        // pushes fetch past the miss latency.
        let mut e = engine();
        let r = e.load(0x900_0000, 8);
        e.branch(false, 11, &[r]); // counter starts weakly-taken → mispredict
        e.scalar_op(AluKind::Int, &[]);
        let stats = e.finish();
        assert!(
            stats.cycles > MemConfig::default().dram_latency as u64,
            "cycles = {}",
            stats.cycles
        );
        assert_eq!(stats.mispredicts, 1);
    }

    #[test]
    fn delay_adds_latency_to_dependents() {
        let mut e = engine();
        let r = e.scalar_op(AluKind::Int, &[]);
        let d = e.delay(50, &[r]);
        let done = e.push(Inst::scalar(AluKind::Int, &[d], None));
        assert!(done >= 51, "dependent completed at {done}");
    }

    #[test]
    fn timeline_records_lifecycles() {
        let mut e = engine();
        e.enable_timeline(4);
        for i in 0..10u64 {
            let r = e.load(0x1000 + i * 64, 8);
            e.scalar_op(AluKind::FpAdd, &[r]);
        }
        let timeline = e.timeline().expect("enabled");
        assert_eq!(timeline.len(), 4); // bounded window
        for entry in timeline.entries() {
            assert!(entry.fetch <= entry.ready);
            assert!(entry.ready <= entry.complete);
            assert!(entry.complete <= entry.commit);
        }
        let rendered = timeline.render();
        assert!(rendered.contains("load") || rendered.contains("scalar"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "VIA001")]
    fn debug_hook_panics_on_undefined_register() {
        let mut e = engine();
        // Register 42 has no producer: silently treated as ready-at-0 by
        // the timing model, which is exactly the corruption class the
        // debug-build verifier hook must catch.
        e.push(Inst::scalar(AluKind::Int, &[42], None));
    }

    #[test]
    fn capture_collects_reports_instead_of_panicking() {
        let _guard = verify::capture_guard();
        let mut e = engine();
        e.push(Inst::scalar(AluKind::Int, &[42], None));
        let stats = e.finish();
        assert_eq!(stats.instructions, 1);
        let reports = verify::drain_captured();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].error_count(), 1);
        assert_eq!(
            reports[0]
                .with_code(verify::DiagCode::UndefinedRegister)
                .len(),
            1
        );
    }

    #[test]
    fn capture_flushes_one_report_per_reset() {
        let _guard = verify::capture_guard();
        let mut e = engine();
        e.scalar_op(AluKind::Int, &[]);
        e.reset();
        e.scalar_op(AluKind::Int, &[]);
        let _ = e.finish();
        let reports = verify::drain_captured();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(verify::Report::is_clean));
    }

    #[test]
    fn report_diag_reaches_captured_report() {
        let _guard = verify::capture_guard();
        let mut e = engine();
        e.scalar_op(AluKind::Int, &[]);
        e.report_diag(verify::Diag::new(
            verify::DiagCode::SspmCamOverflowRisk,
            "test",
            "synthetic warning".to_string(),
        ));
        let _ = e.finish();
        let reports = verify::drain_captured();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].warning_count(), 1);
        assert!(reports[0].is_clean(), "warnings are not violations");
    }

    fn mixed_workload(e: &mut Engine) {
        for i in 0..200u64 {
            let r = e.load(0x1000 + (i * 192) % 4096, 8);
            let s = e.scalar_op(AluKind::FpAdd, &[r]);
            e.vec_op(VecOpKind::Fma, &[s]);
            e.branch(i % 7 != 0, 3, &[s]);
            if i % 16 == 0 {
                let addrs: Vec<u64> = (0..4).map(|k| 0x8000 + ((i + k) * 72) % 2048).collect();
                let dst = e.fresh_reg();
                e.push(Inst::gather(addrs, 8, &[s], dst));
            }
        }
    }

    #[test]
    fn recording_does_not_perturb_timing() {
        let mut plain = engine();
        mixed_workload(&mut plain);
        let mut recorded = engine();
        recorded.enable_recording();
        assert!(recorded.recording_enabled());
        mixed_workload(&mut recorded);
        let stream = recorded.take_compiled().expect("recording was on");
        assert!(!recorded.recording_enabled());
        assert_eq!(stream.len() as u64, 200 * 4 + 13);
        assert_eq!(plain.finish(), recorded.finish());
    }

    #[test]
    fn emit_only_records_the_same_stream_as_a_timed_run() {
        let mut timed = engine();
        timed.enable_recording();
        mixed_workload(&mut timed);
        let timed_stream = timed.take_compiled().expect("recording was on");
        let timed_stats = timed.finish();

        let mut fast = engine();
        fast.enable_recording();
        fast.enable_emit_only();
        assert!(fast.emit_only_enabled());
        mixed_workload(&mut fast);
        let fast_stream = fast.take_compiled().expect("recording was on");

        // Identical instructions, events, and verify report — the stream
        // hash covers all three inputs the replay path consumes.
        assert_eq!(fast_stream.stream_hash(), timed_stream.stream_hash());
        assert_eq!(fast_stream.verify(), timed_stream.verify());

        // Replaying the emit-only stream reproduces the timed run exactly.
        let mut replayer = engine();
        replayer.replay(&fast_stream);
        assert_eq!(replayer.finish(), timed_stats);
    }

    #[test]
    fn reset_clears_emit_only() {
        let mut e = engine();
        e.enable_emit_only();
        e.scalar_op(AluKind::Int, &[]);
        assert_eq!(e.stats_so_far().cycles, 0);
        e.reset();
        assert!(!e.emit_only_enabled());
        e.scalar_op(AluKind::Int, &[]);
        let stats = e.finish();
        assert!(stats.cycles > 0, "timing resumed after reset");
    }

    #[test]
    fn replay_is_bit_identical_to_interpretation() {
        let mut recorded = engine();
        recorded.enable_stall_accounting();
        recorded.enable_recording();
        mixed_workload(&mut recorded);
        let stream = recorded.take_compiled().expect("recording was on");
        let recorded_stalls = recorded.stall_report();
        let recorded_stats = recorded.finish();

        let mut replayer = engine();
        replayer.enable_stall_accounting();
        let last = replayer.replay(&stream);
        assert_eq!(replayer.stall_report(), recorded_stalls);
        let replayed_stats = replayer.finish();
        assert_eq!(replayed_stats, recorded_stats);
        assert!(last <= replayed_stats.cycles);
    }

    #[test]
    fn replay_flushes_the_compile_time_report_under_capture() {
        let _guard = verify::capture_guard();
        let mut recorded = engine();
        recorded.enable_recording();
        // Undefined source register: captured as VIA001 instead of a panic.
        recorded.push(Inst::scalar(AluKind::Int, &[42], None));
        let stream = recorded.take_compiled().expect("recording was on");
        let _ = recorded.finish();
        let from_recording = verify::drain_captured();
        assert_eq!(from_recording.len(), 1);

        let mut replayer = engine();
        replayer.replay(&stream);
        let _ = replayer.finish();
        let from_replay = verify::drain_captured();
        assert_eq!(from_replay.len(), 1);
        // Bit-identical diagnostics across the two paths, and both match
        // the stream's one-shot report.
        assert_eq!(from_replay, from_recording);
        assert_eq!(&from_replay[0], stream.verify());
        assert_eq!(from_replay[0].error_count(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "VIA001")]
    fn debug_replay_panics_on_error_carrying_stream() {
        use crate::compile::CompiledStream;
        use crate::verify::Program;
        // Compile offline (no engine, no capture): the error lands in the
        // stream's report rather than panicking.
        let prog: Program = vec![Inst::scalar(AluKind::Int, &[42], None)]
            .into_iter()
            .collect();
        let stream =
            CompiledStream::compile(prog, &VerifyConfig::from_core(&CoreConfig::default()));
        assert_eq!(stream.verify().error_count(), 1);
        engine().replay(&stream);
    }

    #[test]
    fn reset_clears_replay_state_between_runs() {
        let _guard = verify::capture_guard();
        let mut recorded = engine();
        recorded.enable_recording();
        recorded.scalar_op(AluKind::Int, &[]);
        let stream = recorded.take_compiled().expect("recording was on");
        let _ = recorded.finish();

        let mut e = engine();
        e.replay(&stream);
        e.reset();
        // A fresh interpreted run after the reset flushes its own (clean)
        // streaming report, not the stale replayed one.
        e.push(Inst::scalar(AluKind::Int, &[7], None));
        let _ = e.finish();
        let reports = verify::drain_captured();
        assert_eq!(reports.len(), 3); // recorded run + replay + interpreted
        assert_eq!(reports[2].error_count(), 1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut e = engine();
            for i in 0..100u64 {
                let r = e.load(0x1000 + (i * 192) % 4096, 8);
                e.scalar_op(AluKind::FpAdd, &[r]);
            }
            e.finish()
        };
        assert_eq!(run(), run());
    }
}

//! Trace-driven out-of-order core and memory-hierarchy timing model.
//!
//! This crate is the reproduction's substitute for the paper's gem5
//! full-system simulation (paper §V-A). Kernels are expressed as dynamic
//! streams of abstract vector-ISA instructions ([`prog::Inst`]) carrying
//! virtual-register data dependences; the [`engine::Engine`] retires them
//! through an out-of-order timing model with:
//!
//! * a reorder buffer and fetch/commit width limits,
//! * per-class functional-unit pools (scalar ALUs, vector ALUs, load/store
//!   ports, and one *custom* unit slot used by `via-core` for the FIVU),
//! * a full cache hierarchy (L1D/L2/L3, set-associative, write-back,
//!   write-allocate) over a DRAM model with latency **and** bandwidth,
//! * per-element gather/scatter cost (the ≥ 22-cycle penalty the paper
//!   quotes for AVX2 gathers, §III-A),
//! * commit-time serialized execution for custom (VIA) ops (paper §IV-E).
//!
//! The model is *event-driven per instruction* (constant work per
//! instruction, no cycle loop), which makes simulating the paper's
//! thousand-matrix sweeps tractable while preserving the first-order
//! behaviour the paper's results rest on: overlap of out-of-order memory
//! streams, cache locality, gather serialization, and DRAM bandwidth
//! saturation.
//!
//! # Example
//!
//! ```
//! use via_sim::{CoreConfig, Engine, MemConfig};
//! use via_sim::prog::{AluKind, Inst};
//!
//! let mut engine = Engine::new(CoreConfig::default(), MemConfig::default());
//! let a = engine.alloc_mut().alloc_f64(16);
//! let r = engine.fresh_reg();
//! engine.push(Inst::load(a.addr_of(0), 8, r));
//! let d = engine.fresh_reg();
//! engine.push(Inst::scalar(AluKind::FpAdd, &[r], Some(d)));
//! let stats = engine.finish();
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.instructions, 2);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod analyze;
pub mod calendar;
pub mod compile;
pub mod config;
pub mod engine;
pub mod mem;
pub mod prog;
pub mod stats;
pub mod telemetry;
pub mod timeline;
pub mod trace;
pub mod verify;

pub use alloc::{AddressSpace, Region};
pub use analyze::{analyze, AnalysisCache, AnalysisReport, AnalyzeConfig, StaticBound};
pub use compile::{config_hash, fnv1a64, stream_hash, CompiledStream, StreamCache};
pub use config::{CacheConfig, CoreConfig, MemConfig};
pub use engine::Engine;
pub use mem::SharedLlc;
pub use prog::{AluKind, Inst, Op, Reg, VecOpKind};
pub use stats::{CacheStats, RunStats};
pub use telemetry::{simulated_instructions, TelemetrySnapshot, ThroughputProbe};
pub use timeline::{Timeline, TimelineEntry};
pub use trace::{MemLevel, OpClass, RegionStalls, StallCause, StallReport, TraceEvent};
pub use verify::{Verifier, VerifyConfig};

//! A single set-associative, write-back, write-allocate cache level.

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was filled; if a dirty victim was evicted its line address
    /// is returned so the caller can propagate the writeback.
    Miss {
        /// Line-aligned address of the evicted dirty line, if any.
        dirty_victim: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// One cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    set_shift: u32,
    set_mask: u64,
    /// Per set, most-recently-used first.
    sets: Vec<Vec<Line>>,
    /// `(set, tag)` of the last access. That line is by construction the
    /// MRU of its set, so a repeat access (the common case for sequential
    /// kernels walking a line 8 elements at a time) needs no probe, no
    /// LRU rotation — just a dirty-bit OR and a hit count.
    last_hit: Option<(usize, u64)>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::sets`]) or the line size / set count is not a power
    /// of two.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.sets();
        assert!(
            cfg.line_bytes.is_power_of_two() && nsets.is_power_of_two(),
            "line size and set count must be powers of two"
        );
        Cache {
            cfg,
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (nsets - 1) as u64,
            sets: vec![Vec::with_capacity(cfg.ways); nsets],
            last_hit: None,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line-aligned address for `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((self.cfg.line_bytes as u64) - 1)
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate).
    /// `write` marks the line dirty.
    ///
    /// The memo check is the whole hot path (sequential kernels re-touch
    /// the same line element by element); it inlines into callers while
    /// the probe/fill machinery stays a call away.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        let (set_idx, tag) = self.set_and_tag(addr);
        if self.last_hit == Some((set_idx, tag)) {
            // The memoized line is the MRU of its set, so the slow path's
            // remove/insert rotation would be the identity: only the dirty
            // bit and the hit counter change.
            self.sets[set_idx][0].dirty |= write;
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.probe(set_idx, tag, write)
    }

    /// Probe-and-fill path for accesses that miss the last-line memo.
    fn probe(&mut self, set_idx: usize, tag: u64, write: bool) -> Access {
        self.last_hit = Some((set_idx, tag));
        let set_bits = self.set_mask.count_ones();
        let set_shift = self.set_shift;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut line = set.remove(pos);
            line.dirty |= write;
            set.insert(0, line);
            self.stats.hits += 1;
            return Access::Hit;
        }
        self.stats.misses += 1;
        let dirty_victim = if set.len() == self.cfg.ways {
            let victim = set.pop().expect("set non-empty");
            if victim.dirty {
                self.stats.writebacks += 1;
                Some(((victim.tag << set_bits) | set_idx as u64) << set_shift)
            } else {
                None
            }
        } else {
            None
        };
        set.insert(0, Line { tag, dirty: write });
        Access::Miss { dirty_victim }
    }

    /// Whether `addr`'s line is currently resident (does not update LRU or
    /// stats).
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Installs a line without counting an access (used for writeback
    /// traffic arriving from an upper level). Returns a dirty victim like
    /// [`Cache::access`].
    pub fn install_dirty(&mut self, addr: u64) -> Option<u64> {
        match self.access(addr, true) {
            Access::Hit => {
                // Undo the statistics: writebacks are not demand accesses.
                self.stats.hits -= 1;
                None
            }
            Access::Miss { dirty_victim } => {
                self.stats.misses -= 1;
                dirty_victim
            }
        }
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Empties the cache and zeroes its statistics, keeping every set's
    /// storage allocated so a reused engine pays no reallocation.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.last_hit = None;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(matches!(c.access(0x1000, false), Access::Miss { .. }));
        assert_eq!(c.access(0x1000, false), Access::Hit);
        assert_eq!(c.access(0x1008, false), Access::Hit); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = tiny();
        c.access(0x0, true); // dirty
        c.access(0x100, false);
        let res = c.access(0x200, false); // evicts dirty 0x0
        match res {
            Access::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(0x0)),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_victim() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x100, false);
        match c.access(0x200, false) {
            Access::Miss { dirty_victim } => assert_eq!(dirty_victim, None),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, true); // hit, marks dirty
        c.access(0x100, false);
        match c.access(0x200, false) {
            Access::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(0x0)),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn victim_address_reconstruction_round_trips() {
        let mut c = tiny();
        let addr = 0x12340; // arbitrary line
        c.access(addr, true);
        let set_stride = 0x100u64;
        c.access(addr + set_stride, false);
        match c.access(addr + 2 * set_stride, false) {
            Access::Miss { dirty_victim } => {
                assert_eq!(dirty_victim, Some(c.line_addr(addr)));
            }
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn install_dirty_does_not_change_demand_stats() {
        let mut c = tiny();
        c.install_dirty(0x40);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(c.contains(0x40));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.resident_lines(), 4);
        for i in 0..4u64 {
            assert_eq!(c.access(i * 64, false), Access::Hit);
        }
    }
}

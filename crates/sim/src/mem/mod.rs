//! Memory hierarchy: L1D → L2 → L3 → DRAM with bandwidth modeling.

mod cache;

pub use cache::{Access, Cache};

use std::sync::{Arc, Mutex};

use crate::calendar::Calendar;
use crate::config::MemConfig;
use crate::stats::{CacheStats, RunStats};

/// The last-level state a socket's cores share: one L3 cache plus the DRAM
/// channel calendar.
#[derive(Debug)]
struct LlcState {
    l3: Cache,
    dram: Calendar,
}

/// An L3 + DRAM channel shared by every core of a simulated socket.
///
/// Attach one handle to each core's [`Hierarchy`] (via
/// [`Hierarchy::attach_shared`]) and the cores' L2 misses walk a *common*
/// L3 and book transfers on a *common* DRAM calendar — which is what
/// models inter-core contention: a line transfer booked by one core
/// pushes another core's fill later in time. Cores of a socket are
/// simulated sequentially (deterministic arbitration: earlier-simulated
/// cores win equal-time slots), so the interior mutex is uncontended; it
/// exists so engines holding a handle stay `Send` for the bench harness's
/// worker threads.
///
/// With a single attached core the shared walk performs exactly the same
/// cache and calendar operations as a private hierarchy, so an N=1 socket
/// is bit-identical to the plain single-core engine.
#[derive(Debug)]
pub struct SharedLlc {
    state: Mutex<LlcState>,
}

impl SharedLlc {
    /// A fresh shared LLC sized by `cfg.l3` with one DRAM channel.
    pub fn new(cfg: &MemConfig) -> Self {
        SharedLlc {
            state: Mutex::new(LlcState {
                l3: Cache::new(cfg.l3),
                dram: Calendar::new(1),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LlcState> {
        self.state.lock().expect("shared LLC lock poisoned")
    }

    /// Empties the shared L3 and DRAM calendar (all attached cores see the
    /// reset; only meaningful between whole-socket runs).
    pub fn reset(&self) {
        let mut st = self.lock();
        st.l3.reset();
        st.dram.reset();
    }

    /// Aggregate L3 statistics across every attached core.
    pub fn l3_stats(&self) -> CacheStats {
        self.lock().l3.stats()
    }
}

/// Counter deltas produced by one walk of the L3/DRAM leg; merged into the
/// owning core's observation counters after the (possibly shared) state
/// lock is released.
#[derive(Default)]
struct LlcEffects {
    level: u8,
    read_bytes: u64,
    write_bytes: u64,
    busy_cycles: u64,
    wait_cycles: u64,
}

fn transfer_cycles(bytes: u64, bytes_per_cycle: f64) -> u64 {
    ((bytes as f64 / bytes_per_cycle).ceil() as u64).max(1)
}

/// Books a dirty-line writeback on the DRAM channel.
fn llc_writeback(cfg: &MemConfig, dram: &mut Calendar, at: u64, fx: &mut LlcEffects) {
    let line = cfg.l3.line_bytes as u64;
    let occupancy = transfer_cycles(line, cfg.dram_bytes_per_cycle);
    dram.book_span(at, occupancy);
    fx.busy_cycles += occupancy;
    fx.write_bytes += line;
}

/// Installs an L2 victim into L3, cascading an evicted dirty line to DRAM.
fn llc_install_dirty(
    cfg: &MemConfig,
    l3: &mut Cache,
    dram: &mut Calendar,
    line_addr: u64,
    at: u64,
    fx: &mut LlcEffects,
) {
    if l3.install_dirty(line_addr).is_some() {
        llc_writeback(cfg, dram, at, fx);
    }
}

/// The demand-fill L3 lookup + DRAM transfer on miss. `latency` already
/// includes the L1 + L2 + L3 lookup latencies; returns `done - now`.
fn llc_demand(
    cfg: &MemConfig,
    l3: &mut Cache,
    dram: &mut Calendar,
    addr: u64,
    now: u64,
    latency: u64,
    fx: &mut LlcEffects,
) -> u64 {
    match l3.access(addr, false) {
        Access::Hit => {
            fx.level = 3;
            return latency;
        }
        Access::Miss { dirty_victim } => {
            if dirty_victim.is_some() {
                llc_writeback(cfg, dram, now + latency, fx);
            }
        }
    }
    // DRAM: wait for a channel slot, transfer one line.
    fx.level = 4;
    let request_at = now + latency;
    let line = cfg.l3.line_bytes as u64;
    let occupancy = transfer_cycles(line, cfg.dram_bytes_per_cycle);
    let start = dram.book_span(request_at, occupancy);
    fx.wait_cycles += start.saturating_sub(request_at);
    fx.busy_cycles += occupancy;
    fx.read_bytes += line;
    let done = start + cfg.dram_latency as u64;
    done - now
}

/// The L3/DRAM leg of a prefetch: fills the line off the demand path,
/// consuming DRAM bandwidth but adding no latency (and not touching the
/// level mark). `line` is the prefetcher's transfer size (L2 line).
fn llc_prefetch(
    cfg: &MemConfig,
    l3: &mut Cache,
    dram: &mut Calendar,
    target: u64,
    at: u64,
    line: u64,
    fx: &mut LlcEffects,
) {
    if let Access::Miss { dirty_victim } = l3.access(target, false) {
        if dirty_victim.is_some() {
            llc_writeback(cfg, dram, at, fx);
        }
        let occupancy = transfer_cycles(line, cfg.dram_bytes_per_cycle);
        dram.book_span(at, occupancy);
        fx.busy_cycles += occupancy;
        fx.read_bytes += line;
    }
}

/// The three-level cache hierarchy plus a DRAM channel with latency and
/// bandwidth limits.
///
/// An access walks the levels; every miss fills the line on the way back
/// (write-allocate) and dirty evictions propagate downward as writeback
/// traffic. The DRAM channel serializes transfers at
/// `dram_bytes_per_cycle`, which is what lets memory-bound kernels saturate
/// — the effect VIA exploits by keeping the dense vector out of the memory
/// system (paper §III-B).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    /// DRAM channel occupancy calendar (one transfer at a time).
    dram: Calendar,
    /// A socket-shared L3 + DRAM channel. When attached, the private
    /// `l3`/`dram` above go unused: every L2 miss walks the shared state
    /// instead, modeling inter-core LLC capacity and DRAM bandwidth
    /// contention. All observation counters below stay per-core.
    shared: Option<Arc<SharedLlc>>,
    dram_read_bytes: u64,
    dram_write_bytes: u64,
    dram_busy_cycles: u64,
    prefetches_issued: u64,
    /// Cumulative cycles demand fills queued for the DRAM channel
    /// (booking start − request time). Pure observation for `via-trace`;
    /// never feeds back into timing.
    dram_wait_cycles: u64,
    /// Cumulative cycles accesses queued for a load/store-port slot.
    port_wait_cycles: u64,
    /// Deepest level reached since the engine last cleared the mark
    /// (0 = untouched/L1 hit, 2 = L2, 3 = L3, 4 = DRAM). Only the
    /// miss walk writes it, so the L1-hit fast path stays untouched.
    level_mark: u8,
}

impl Hierarchy {
    /// A new, empty hierarchy.
    pub fn new(cfg: MemConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            cfg,
            dram: Calendar::new(1),
            shared: None,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            dram_busy_cycles: 0,
            prefetches_issued: 0,
            dram_wait_cycles: 0,
            port_wait_cycles: 0,
            level_mark: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Performs one access of up to a cache line at `addr` and returns its
    /// latency in cycles, given the access starts at absolute cycle `now`.
    ///
    /// Multi-line accesses must be split by the caller; unit-stride vector
    /// accesses should go through [`Hierarchy::access_span`], which splits
    /// internally without allocating.
    /// The L1-hit case (the overwhelming majority once a kernel's working
    /// set is resident) inlines into callers; the multi-level miss walk
    /// stays a call away.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool, now: u64) -> u64 {
        match self.l1.access(addr, write) {
            Access::Hit => self.cfg.l1.latency as u64,
            Access::Miss { dirty_victim } => self.access_beyond_l1(addr, dirty_victim, now),
        }
    }

    /// Continues an access that missed L1: walks L2 → L3 → DRAM, filling
    /// and propagating writebacks on the way back.
    fn access_beyond_l1(&mut self, addr: u64, l1_victim: Option<u64>, now: u64) -> u64 {
        let mut latency = self.cfg.l1.latency as u64;
        if let Some(victim) = l1_victim {
            self.writeback_to_l2(victim, now);
        }
        latency += self.cfg.l2.latency as u64;
        // The fill from L2 (or below) also installs into L1 (done above by
        // access's write-allocate; the line was already inserted).
        match self.l2.access(addr, false) {
            Access::Hit => {
                self.note_level(2);
                return latency;
            }
            Access::Miss { dirty_victim } => {
                if let Some(victim) = dirty_victim {
                    self.writeback_to_l3(victim, now);
                }
                // Next-line stream prefetch into L2 (off the demand path;
                // the transfers still consume DRAM bandwidth).
                if self.cfg.prefetch_degree > 0 {
                    self.prefetch_from(addr, now + latency);
                }
            }
        }
        latency += self.cfg.l3.latency as u64;
        let mut fx = LlcEffects::default();
        let total = if let Some(shared) = &self.shared {
            let st = &mut *shared.lock();
            llc_demand(
                &self.cfg,
                &mut st.l3,
                &mut st.dram,
                addr,
                now,
                latency,
                &mut fx,
            )
        } else {
            llc_demand(
                &self.cfg,
                &mut self.l3,
                &mut self.dram,
                addr,
                now,
                latency,
                &mut fx,
            )
        };
        self.merge_effects(fx);
        total
    }

    /// Merges one L3/DRAM walk's counter deltas into the per-core
    /// observation counters.
    fn merge_effects(&mut self, fx: LlcEffects) {
        self.dram_read_bytes += fx.read_bytes;
        self.dram_write_bytes += fx.write_bytes;
        self.dram_busy_cycles += fx.busy_cycles;
        self.dram_wait_cycles += fx.wait_cycles;
        self.note_level(fx.level);
    }

    fn writeback_to_l2(&mut self, line_addr: u64, at: u64) {
        if let Some(victim) = self.l2.install_dirty(line_addr) {
            self.writeback_to_l3(victim, at);
        }
    }

    fn writeback_to_l3(&mut self, line_addr: u64, at: u64) {
        // Off the critical path, but queued no earlier than the access
        // that evicted it.
        let mut fx = LlcEffects::default();
        if let Some(shared) = &self.shared {
            let st = &mut *shared.lock();
            llc_install_dirty(&self.cfg, &mut st.l3, &mut st.dram, line_addr, at, &mut fx);
        } else {
            llc_install_dirty(
                &self.cfg,
                &mut self.l3,
                &mut self.dram,
                line_addr,
                at,
                &mut fx,
            );
        }
        self.merge_effects(fx);
    }

    /// Attaches a socket-shared LLC: from now on L2 misses walk `shared`'s
    /// L3 and book its DRAM calendar instead of the private ones. Attach
    /// before any traffic (the private L3's contents are not migrated).
    pub fn attach_shared(&mut self, shared: Arc<SharedLlc>) {
        self.shared = Some(shared);
    }

    /// The attached shared LLC, if any.
    pub fn shared_llc(&self) -> Option<&Arc<SharedLlc>> {
        self.shared.as_ref()
    }

    /// Discards DRAM channel bookings below `t` (called by the engine as
    /// the fetch frontier advances). With a shared LLC attached this is a
    /// no-op: sibling cores are simulated sequentially from cycle 0, so
    /// "history" for this core is still the future for the next one —
    /// pruning would erase cross-core contention. (Pruning is timing-
    /// neutral for the pruning core itself, so skipping it keeps N=1
    /// bit-identical.)
    pub fn prune_below(&mut self, t: u64) {
        if self.shared.is_none() {
            self.dram.prune_below(t);
        }
    }

    /// Issues `prefetch_degree` next-line prefetches into L2 starting after
    /// `addr`'s line. Prefetched lines that miss L3 occupy the DRAM channel
    /// like demand fills but add no latency to the triggering access.
    fn prefetch_from(&mut self, addr: u64, at: u64) {
        let line = self.cfg.l2.line_bytes as u64;
        let base = addr & !(line - 1);
        for d in 1..=self.cfg.prefetch_degree as u64 {
            let target = base + d * line;
            if self.l2.contains(target) {
                continue;
            }
            self.prefetches_issued += 1;
            if let Access::Miss { dirty_victim } = self.l2.access(target, false) {
                if let Some(victim) = dirty_victim {
                    self.writeback_to_l3(victim, at);
                }
                let mut fx = LlcEffects::default();
                if let Some(shared) = &self.shared {
                    let st = &mut *shared.lock();
                    llc_prefetch(
                        &self.cfg,
                        &mut st.l3,
                        &mut st.dram,
                        target,
                        at,
                        line,
                        &mut fx,
                    );
                } else {
                    llc_prefetch(
                        &self.cfg,
                        &mut self.l3,
                        &mut self.dram,
                        target,
                        at,
                        line,
                        &mut fx,
                    );
                }
                self.merge_effects(fx);
            }
        }
    }

    /// Number of prefetches issued so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    // ---- via-trace observation counters --------------------------------

    #[inline]
    fn note_level(&mut self, level: u8) {
        if level > self.level_mark {
            self.level_mark = level;
        }
    }

    /// Cumulative cycles demand fills queued behind the DRAM channel
    /// calendar. The engine diffs this around an access to attribute
    /// bandwidth stalls.
    pub fn dram_wait_cycles(&self) -> u64 {
        self.dram_wait_cycles
    }

    /// Cumulative cycles accesses queued for a load/store-port slot.
    pub fn port_wait_cycles(&self) -> u64 {
        self.port_wait_cycles
    }

    /// Adds externally observed port-slot wait (the engine books ports
    /// itself for gather/scatter elements).
    pub fn note_port_wait(&mut self, cycles: u64) {
        self.port_wait_cycles += cycles;
    }

    /// Deepest level the miss walk reached since the last clear
    /// (0 = every access hit L1, 2/3 = L2/L3, 4 = DRAM).
    pub fn level_mark(&self) -> u8 {
        self.level_mark
    }

    /// Resets the deepest-level mark (called by the engine before each
    /// traced instruction).
    pub fn clear_level_mark(&mut self) {
        self.level_mark = 0;
    }

    /// Performs a unit-stride access of `bytes` starting at `addr`,
    /// splitting it into line-sized pieces internally — one amortized call
    /// per vector access instead of one [`Hierarchy::access`] per line,
    /// with no intermediate address list. Each piece books one slot on
    /// `ports` no earlier than `t` (fills overlap; latency is the max).
    /// Stores complete at store-buffer acceptance (L1 latency) — fill and
    /// writeback traffic is still charged to the memory system, but a
    /// store miss does not sit on the dependence/commit critical path.
    pub fn access_span(
        &mut self,
        addr: u64,
        bytes: u32,
        write: bool,
        t: u64,
        ports: &mut Calendar,
    ) -> u64 {
        let line = self.cfg.l1.line_bytes as u64;
        let sb_latency = self.cfg.l1.latency as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes.max(1) as u64 - 1) & !(line - 1);
        let mut done = t;
        let mut piece = first;
        loop {
            let start = ports.book(t);
            self.port_wait_cycles += start.saturating_sub(t);
            let lat = self.access(piece, write, start);
            let effective = if write { sb_latency } else { lat };
            done = done.max(start + effective);
            if piece >= last {
                break;
            }
            piece += line;
        }
        done
    }

    /// Splits a `[addr, addr + bytes)` access into line-aligned pieces.
    pub fn lines_touched(&self, addr: u64, bytes: u32) -> impl Iterator<Item = u64> {
        let line = self.cfg.l1.line_bytes as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes.max(1) as u64 - 1) & !(line - 1);
        (first..=last).step_by(line as usize)
    }

    /// Copies the hierarchy counters into `stats`. With a shared LLC
    /// attached, `stats.l3` carries the *socket-wide* L3 statistics (hits
    /// and misses are not separable per core once the cache is shared);
    /// the DRAM byte/busy counters stay per-core.
    pub fn fill_stats(&self, stats: &mut RunStats) {
        stats.l1 = self.l1.stats();
        stats.l2 = self.l2.stats();
        stats.l3 = match &self.shared {
            Some(shared) => shared.l3_stats(),
            None => self.l3.stats(),
        };
        stats.dram_read_bytes = self.dram_read_bytes;
        stats.dram_write_bytes = self.dram_write_bytes;
        stats.dram_busy_cycles = self.dram_busy_cycles;
    }

    /// Empties all cache levels, the DRAM channel calendar, and the traffic
    /// counters — the hierarchy behaves exactly like a freshly-built one,
    /// but keeps its allocated set storage. With a shared LLC attached the
    /// shared state is reset too (every attached core sees it), matching
    /// the "freshly built" contract; socket runs reset whole sockets.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.dram.reset();
        if let Some(shared) = &self.shared {
            shared.reset();
        }
        self.dram_read_bytes = 0;
        self.dram_write_bytes = 0;
        self.dram_busy_cycles = 0;
        self.prefetches_issued = 0;
        self.dram_wait_cycles = 0;
        self.port_wait_cycles = 0;
        self.level_mark = 0;
    }

    /// L1 statistics so far.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// Whether an address is resident in L1 (test helper).
    pub fn in_l1(&self, addr: u64) -> bool {
        self.l1.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(MemConfig::default())
    }

    #[test]
    fn cold_access_pays_full_path() {
        let mut h = hierarchy();
        let cfg = h.config().clone();
        let lat = h.access(0x1000, false, 0);
        let min = (cfg.l1.latency + cfg.l2.latency + cfg.l3.latency + cfg.dram_latency) as u64;
        assert!(lat >= min, "cold access {lat} < {min}");
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut h = hierarchy();
        h.access(0x1000, false, 0);
        let lat = h.access(0x1000, false, 100);
        assert_eq!(lat, h.config().l1.latency as u64);
    }

    #[test]
    fn same_line_is_one_fill() {
        let mut h = hierarchy();
        h.access(0x1000, false, 0);
        let lat = h.access(0x1030, false, 10); // same 64B line
        assert_eq!(lat, h.config().l1.latency as u64);
    }

    #[test]
    fn dram_bandwidth_serializes_streams() {
        let mut h = hierarchy();
        // Two cold lines requested at the same cycle: the second transfer
        // queues behind the first.
        let l1 = h.access(0x10000, false, 0);
        let l2 = h.access(0x20000, false, 0);
        assert!(l2 > l1);
    }

    #[test]
    fn writeback_traffic_is_counted() {
        let mut h = hierarchy();
        let cfg = h.config().clone();
        // Dirty enough lines mapping everywhere to force L1..L3 evictions:
        // touching more than the whole L3 capacity guarantees DRAM
        // writebacks of the dirty data.
        let lines = (cfg.l3.size_bytes / cfg.l3.line_bytes) * 2;
        let mut t = 0;
        for i in 0..lines as u64 {
            t += h.access(0x100000 + i * 64, true, t);
        }
        let mut stats = RunStats::default();
        h.fill_stats(&mut stats);
        assert!(stats.dram_write_bytes > 0, "expected dirty writebacks");
        assert!(stats.dram_read_bytes as usize >= lines * 64);
    }

    #[test]
    fn lines_touched_splits_correctly() {
        let h = hierarchy();
        let lines: Vec<u64> = h.lines_touched(0x100, 32).collect();
        assert_eq!(lines, vec![0x100]);
        let lines: Vec<u64> = h.lines_touched(0x13c, 8).collect();
        assert_eq!(lines, vec![0x100, 0x140]);
        let lines: Vec<u64> = h.lines_touched(0x100, 129).collect();
        assert_eq!(lines, vec![0x100, 0x140, 0x180]);
    }

    #[test]
    fn stats_account_hits_and_misses() {
        let mut h = hierarchy();
        h.access(0x0, false, 0);
        h.access(0x0, false, 10);
        h.access(0x40, false, 20);
        let mut stats = RunStats::default();
        h.fill_stats(&mut stats);
        assert_eq!(stats.l1.hits, 1);
        assert_eq!(stats.l1.misses, 2);
    }

    #[test]
    fn prefetcher_turns_stream_misses_into_hits() {
        let mut with_pf = Hierarchy::new(MemConfig {
            prefetch_degree: 2,
            ..MemConfig::default()
        });
        let mut without = Hierarchy::new(MemConfig::default());
        // Stream 64 consecutive lines through both.
        let (mut t1, mut t2) = (0u64, 0u64);
        for i in 0..64u64 {
            t1 += with_pf.access(0x40_0000 + i * 64, false, t1);
            t2 += without.access(0x40_0000 + i * 64, false, t2);
        }
        assert!(with_pf.prefetches_issued() > 0);
        // The prefetched stream resolves in L2 instead of DRAM.
        let mut s1 = RunStats::default();
        let mut s2 = RunStats::default();
        with_pf.fill_stats(&mut s1);
        without.fill_stats(&mut s2);
        assert!(
            s1.l2.hits > s2.l2.hits,
            "prefetching should create L2 hits: {} vs {}",
            s1.l2.hits,
            s2.l2.hits
        );
        assert!(t1 < t2, "prefetched stream should be faster: {t1} vs {t2}");
    }

    #[test]
    fn prefetch_degree_zero_issues_nothing() {
        let mut h = Hierarchy::new(MemConfig::default());
        for i in 0..16u64 {
            h.access(0x50_0000 + i * 64, false, i * 10);
        }
        assert_eq!(h.prefetches_issued(), 0);
    }

    #[test]
    fn shared_llc_single_core_is_bit_identical() {
        // A lone hierarchy attached to a shared LLC must behave exactly
        // like a private one: same latencies, same counters.
        let mut private = hierarchy();
        let mut shared_h = hierarchy();
        shared_h.attach_shared(Arc::new(SharedLlc::new(&MemConfig::default())));
        let (mut tp, mut ts) = (0u64, 0u64);
        for i in 0..512u64 {
            let addr = 0x10_0000 + (i * 4096) % (32 << 20);
            tp += private.access(addr, i % 3 == 0, tp);
            ts += shared_h.access(addr, i % 3 == 0, ts);
        }
        assert_eq!(tp, ts);
        let (mut sp, mut ss) = (RunStats::default(), RunStats::default());
        private.fill_stats(&mut sp);
        shared_h.fill_stats(&mut ss);
        assert_eq!(sp, ss);
        assert_eq!(private.dram_wait_cycles(), shared_h.dram_wait_cycles());
    }

    #[test]
    fn shared_llc_models_cross_core_contention() {
        // Two cores streaming cold lines through one shared LLC: the
        // second core's fills queue behind the first core's bookings,
        // so it runs slower than it would alone.
        let shared = Arc::new(SharedLlc::new(&MemConfig::default()));
        let mut core0 = hierarchy();
        core0.attach_shared(shared.clone());
        let mut core1 = hierarchy();
        core1.attach_shared(shared.clone());
        let mut alone = hierarchy();
        // Core 0 saturates the channel first (sequential simulation).
        let mut t0 = 0u64;
        for i in 0..256u64 {
            t0 += core0.access(0x100_0000 + i * 64, false, t0);
        }
        let (mut t1, mut ta) = (0u64, 0u64);
        for i in 0..256u64 {
            t1 += core1.access(0x800_0000 + i * 64, false, t1);
            ta += alone.access(0x800_0000 + i * 64, false, ta);
        }
        assert!(
            t1 > ta,
            "contended core ({t1}) should be slower than uncontended ({ta})"
        );
        assert!(core1.dram_wait_cycles() > alone.dram_wait_cycles());
    }

    #[test]
    fn shared_llc_shares_capacity() {
        // A line filled by one core hits in L3 for another core.
        let shared = Arc::new(SharedLlc::new(&MemConfig::default()));
        let mut core0 = hierarchy();
        core0.attach_shared(shared.clone());
        let mut core1 = hierarchy();
        core1.attach_shared(shared.clone());
        core0.access(0x42_0000, false, 0);
        let cfg = core1.config().clone();
        let lat = core1.access(0x42_0000, false, 10_000);
        assert_eq!(
            lat,
            (cfg.l1.latency + cfg.l2.latency + cfg.l3.latency) as u64,
            "second core should hit the shared L3"
        );
    }

    #[test]
    fn shared_llc_prune_is_a_no_op() {
        let shared = Arc::new(SharedLlc::new(&MemConfig::default()));
        let mut h = hierarchy();
        h.attach_shared(shared);
        h.access(0x77_0000, false, 0);
        // Pruning must not discard shared-calendar history (a sibling core
        // simulated later still contends with it).
        h.prune_below(1_000_000);
        let mut sibling = hierarchy();
        sibling.attach_shared(h.shared_llc().unwrap().clone());
        let uncontended = hierarchy().access(0x99_0000, false, 0);
        let contended = sibling.access(0x99_0000, false, 0);
        assert!(contended > uncontended, "booking history must survive");
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let cfg = h.config().clone();
        h.access(0x0, false, 0);
        // Evict 0x0 from L1 by filling its set (same set every l1-size/ways
        // stride).
        let stride = (cfg.l1.size_bytes / cfg.l1.ways) as u64;
        let mut t = 100;
        for i in 1..=cfg.l1.ways as u64 {
            t += h.access(i * stride, false, t);
        }
        assert!(!h.in_l1(0x0));
        // Now it should hit in L2 (cheaper than DRAM).
        let lat = h.access(0x0, false, t);
        assert_eq!(lat, (cfg.l1.latency + cfg.l2.latency) as u64);
    }
}

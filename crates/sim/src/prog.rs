//! The abstract vector instruction set fed to the timing engine.
//!
//! Instructions carry *virtual registers* for data-dependence tracking.
//! Registers are SSA-ish: the engine captures producer completion times when
//! an instruction enters the window, which models perfect register renaming
//! (WAW/WAR never stall, exactly like the renamed out-of-order core the
//! paper simulates).

/// A virtual register id.
pub type Reg = u32;

/// Scalar ALU operation classes (latency selection only — the timing model
/// does not evaluate values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AluKind {
    /// Integer add/compare/bit ops.
    Int,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Fused multiply-add.
    FpFma,
}

/// Vector ALU operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VecOpKind {
    /// Element-wise add/sub.
    Add,
    /// Element-wise multiply.
    Mul,
    /// Fused multiply-add.
    Fma,
    /// Horizontal reduction (sum over lanes).
    Reduce,
    /// Shuffle/permutation (including the index-merging sequences the
    /// baseline index-matching kernels need, paper §III-A challenge 2).
    Permute,
    /// Lane-wise compare producing a mask.
    Compare,
    /// Mask blend/select.
    Blend,
    /// AVX-512CD-style conflict detection (`vpconflictd`), used by the
    /// histogram baseline (paper §IV-F1).
    ConflictDetect,
}

/// An instruction's operation payload.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Op {
    /// Scalar ALU operation.
    Scalar {
        /// Operation class (selects latency).
        kind: AluKind,
    },
    /// Unit-stride load of `bytes` starting at `addr` (scalar loads are
    /// `bytes = 8`; a full vector load is `8 * vl`).
    Load {
        /// Start address.
        addr: u64,
        /// Bytes accessed.
        bytes: u32,
    },
    /// Unit-stride store.
    Store {
        /// Start address.
        addr: u64,
        /// Bytes accessed.
        bytes: u32,
    },
    /// Indexed vector load: one cache access *per element* plus the fixed
    /// gather overhead (paper §III-A: ≥ 22 cycles best case).
    Gather {
        /// Per-element addresses.
        addrs: AddrList,
        /// Bytes per element.
        elem_bytes: u32,
    },
    /// Indexed vector store, symmetric to [`Op::Gather`].
    Scatter {
        /// Per-element addresses.
        addrs: AddrList,
        /// Bytes per element.
        elem_bytes: u32,
    },
    /// Vector ALU operation over `vl` lanes.
    Vec {
        /// Operation class (selects latency).
        kind: VecOpKind,
    },
    /// An operation executed by the custom (FIVU) unit. `via-core` lowers
    /// every VIA ISA instruction to one of these with the SSPM-derived
    /// occupancy/latency.
    Custom {
        /// Cycles the custom unit is busy (non-pipelined portion).
        occupancy: u32,
        /// Cycles until the result is available.
        latency: u32,
        /// If true, the op issues only at commit: all older instructions
        /// must have completed first (paper §IV-E). Consecutive custom ops
        /// still pipeline through the unit.
        at_commit: bool,
    },
    /// A *data-dependent* conditional branch (merge directions, index-match
    /// outcomes, value tests). It runs through the engine's 2-bit branch
    /// predictor: a misprediction redirects fetch after the branch resolves
    /// (its sources complete) plus the front-end penalty. Loop-control
    /// branches should NOT use this — modern loop predictors capture them,
    /// so kernels model loop overhead as plain scalar ops.
    Branch {
        /// The actual direction taken.
        taken: bool,
        /// Static branch site id (indexes the predictor table).
        site: u32,
    },
    /// A pure timing delay: completes `cycles` after its sources are ready,
    /// consuming no functional unit. Used to model micro-architectural
    /// delays that are not instructions — e.g. the store-buffer drain a
    /// gather must wait for before it can read a line with a pending
    /// scatter (gathers cannot forward from the store buffer).
    Delay {
        /// Delay length in cycles.
        cycles: u32,
    },
    /// Full serialization barrier: subsequent instructions enter the window
    /// only after everything before has completed. Used sparingly (e.g.
    /// between experiment phases).
    Fence,
}

impl Op {
    /// A compact tag naming the operation class (used by the timeline).
    pub fn tag(&self) -> &'static str {
        match self {
            Op::Scalar { .. } => "scalar",
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Gather { .. } => "gather",
            Op::Scatter { .. } => "scatter",
            Op::Vec { .. } => "vec",
            Op::Custom { .. } => "custom",
            Op::Branch { .. } => "branch",
            Op::Delay { .. } => "delay",
            Op::Fence => "fence",
        }
    }
}

/// Maximum number of gather/scatter addresses stored inline (covers every
/// vector length the evaluated machines use, VL ≤ 8).
pub const MAX_INLINE_ADDRS: usize = 8;

/// Per-element address list for [`Op::Gather`]/[`Op::Scatter`].
///
/// Up to [`MAX_INLINE_ADDRS`] addresses live inline in the instruction — no
/// heap allocation on the multi-million-instruction hot path. Longer lists
/// (wider experimental vector configurations) spill to a boxed slice.
#[derive(Debug, Clone, PartialEq)]
pub struct AddrList(AddrRepr);

#[derive(Debug, Clone, PartialEq)]
enum AddrRepr {
    Inline([u64; MAX_INLINE_ADDRS], u8),
    Spilled(Box<[u64]>),
}

impl AddrList {
    /// Builds a list, inlining when the slice fits.
    pub fn from_slice(addrs: &[u64]) -> Self {
        if addrs.len() <= MAX_INLINE_ADDRS {
            let mut buf = [0u64; MAX_INLINE_ADDRS];
            buf[..addrs.len()].copy_from_slice(addrs);
            AddrList(AddrRepr::Inline(buf, addrs.len() as u8))
        } else {
            AddrList(AddrRepr::Spilled(addrs.into()))
        }
    }

    /// The addresses as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            AddrRepr::Inline(buf, len) => &buf[..*len as usize],
            AddrRepr::Spilled(b) => b,
        }
    }

    /// Number of addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<&[u64]> for AddrList {
    fn from(addrs: &[u64]) -> Self {
        AddrList::from_slice(addrs)
    }
}

impl From<Vec<u64>> for AddrList {
    fn from(addrs: Vec<u64>) -> Self {
        AddrList::from_slice(&addrs)
    }
}

/// Maximum number of register sources per instruction.
pub const MAX_SRCS: usize = 4;

/// A fixed-capacity source-register list (avoids per-instruction heap
/// allocation on the multi-million-instruction streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcList {
    regs: [Reg; MAX_SRCS],
    len: u8,
}

impl SrcList {
    /// Creates a list from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `srcs.len() > MAX_SRCS`.
    pub fn new(srcs: &[Reg]) -> Self {
        assert!(srcs.len() <= MAX_SRCS, "too many sources");
        let mut regs = [0; MAX_SRCS];
        regs[..srcs.len()].copy_from_slice(srcs);
        SrcList {
            regs,
            len: srcs.len() as u8,
        }
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Register sources this instruction waits on.
    pub srcs: SrcList,
    /// Destination register, if the instruction produces a value.
    pub dst: Option<Reg>,
}

impl Inst {
    /// A new instruction from parts.
    pub fn new(op: Op, srcs: &[Reg], dst: Option<Reg>) -> Self {
        Inst {
            op,
            srcs: SrcList::new(srcs),
            dst,
        }
    }

    /// Scalar ALU instruction.
    pub fn scalar(kind: AluKind, srcs: &[Reg], dst: Option<Reg>) -> Self {
        Inst::new(Op::Scalar { kind }, srcs, dst)
    }

    /// Unit-stride load into `dst`.
    pub fn load(addr: u64, bytes: u32, dst: Reg) -> Self {
        Inst::new(Op::Load { addr, bytes }, &[], Some(dst))
    }

    /// Unit-stride load whose address depends on `srcs` (e.g. pointer
    /// chasing).
    pub fn load_dep(addr: u64, bytes: u32, srcs: &[Reg], dst: Reg) -> Self {
        Inst::new(Op::Load { addr, bytes }, srcs, Some(dst))
    }

    /// Unit-stride store of the value in `srcs`.
    pub fn store(addr: u64, bytes: u32, srcs: &[Reg]) -> Self {
        Inst::new(Op::Store { addr, bytes }, srcs, None)
    }

    /// Gather of `addrs` (dependent on the index register) into `dst`.
    pub fn gather(addrs: impl Into<AddrList>, elem_bytes: u32, srcs: &[Reg], dst: Reg) -> Self {
        Inst::new(
            Op::Gather {
                addrs: addrs.into(),
                elem_bytes,
            },
            srcs,
            Some(dst),
        )
    }

    /// Scatter to `addrs`.
    pub fn scatter(addrs: impl Into<AddrList>, elem_bytes: u32, srcs: &[Reg]) -> Self {
        Inst::new(
            Op::Scatter {
                addrs: addrs.into(),
                elem_bytes,
            },
            srcs,
            None,
        )
    }

    /// Vector ALU instruction.
    pub fn vec(kind: VecOpKind, srcs: &[Reg], dst: Option<Reg>) -> Self {
        Inst::new(Op::Vec { kind }, srcs, dst)
    }

    /// Custom-unit (FIVU) instruction.
    pub fn custom(
        occupancy: u32,
        latency: u32,
        at_commit: bool,
        srcs: &[Reg],
        dst: Option<Reg>,
    ) -> Self {
        Inst::new(
            Op::Custom {
                occupancy,
                latency,
                at_commit,
            },
            srcs,
            dst,
        )
    }

    /// Data-dependent conditional branch; `srcs` are the registers the
    /// branch outcome depends on (its resolve time).
    pub fn branch(taken: bool, site: u32, srcs: &[Reg]) -> Self {
        Inst::new(Op::Branch { taken, site }, srcs, None)
    }

    /// Pure timing delay of `cycles` after `srcs` are ready.
    pub fn delay(cycles: u32, srcs: &[Reg], dst: Reg) -> Self {
        Inst::new(Op::Delay { cycles }, srcs, Some(dst))
    }

    /// Serialization barrier.
    pub fn fence() -> Self {
        Inst::new(Op::Fence, &[], None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srclist_round_trips() {
        let s = SrcList::new(&[3, 5, 9]);
        assert_eq!(s.as_slice(), &[3, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(SrcList::new(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "too many sources")]
    fn srclist_rejects_overflow() {
        SrcList::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = Inst::load(0x100, 8, 7);
        assert_eq!(ld.dst, Some(7));
        assert!(matches!(
            ld.op,
            Op::Load {
                addr: 0x100,
                bytes: 8
            }
        ));

        let g = Inst::gather(&[0u64, 8, 16][..], 8, &[1], 2);
        assert_eq!(g.srcs.as_slice(), &[1]);
        if let Op::Gather { addrs, elem_bytes } = &g.op {
            assert_eq!(addrs.as_slice(), &[0, 8, 16]);
            assert_eq!(*elem_bytes, 8);
        } else {
            panic!("wrong op");
        }

        // Address lists at or under MAX_INLINE_ADDRS stay inline; longer
        // ones spill but round-trip identically.
        let long: Vec<u64> = (0..MAX_INLINE_ADDRS as u64 + 3).map(|i| i * 64).collect();
        let spilled = AddrList::from_slice(&long);
        assert_eq!(spilled.as_slice(), long.as_slice());
        assert_eq!(spilled.len(), long.len());
        assert!(!spilled.is_empty());

        let f = Inst::fence();
        assert!(matches!(f.op, Op::Fence));
        assert!(f.dst.is_none());
    }

    #[test]
    fn tags_name_the_op_class() {
        assert_eq!(Inst::load(0, 8, 1).op.tag(), "load");
        assert_eq!(Inst::fence().op.tag(), "fence");
        assert_eq!(Inst::branch(true, 0, &[]).op.tag(), "branch");
    }

    #[test]
    fn custom_carries_commit_flag() {
        let c = Inst::custom(2, 6, true, &[1, 2], Some(3));
        if let Op::Custom {
            occupancy,
            latency,
            at_commit,
        } = c.op
        {
            assert_eq!((occupancy, latency, at_commit), (2, 6, true));
        } else {
            panic!("wrong op");
        }
    }
}

//! Run statistics collected by the engine and memory system.

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit at this level.
    pub hits: u64,
    /// Accesses that missed and were filled from below.
    pub misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses at this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Statistics of one simulated run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Total cycles (commit time of the last instruction).
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Scalar ALU ops.
    pub scalar_ops: u64,
    /// Vector ALU ops.
    pub vector_ops: u64,
    /// Unit-stride loads.
    pub loads: u64,
    /// Unit-stride stores.
    pub stores: u64,
    /// Gather instructions.
    pub gathers: u64,
    /// Scatter instructions.
    pub scatters: u64,
    /// Total gather/scatter element accesses.
    pub indexed_elems: u64,
    /// Data-dependent branches executed.
    pub branches: u64,
    /// Branches the 2-bit predictor got wrong.
    pub mispredicts: u64,
    /// Custom-unit (VIA) instructions.
    pub custom_ops: u64,
    /// Cycles the custom unit spent occupied.
    pub custom_busy_cycles: u64,
    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Bytes read from DRAM (line fills).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (writebacks).
    pub dram_write_bytes: u64,
    /// Cycles the DRAM channel was busy transferring data.
    pub dram_busy_cycles: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Achieved DRAM bandwidth in bytes per cycle.
    pub fn dram_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes() as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the DRAM channel was busy.
    pub fn dram_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_busy_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_ratios() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn run_stats_derived_metrics() {
        let s = RunStats {
            cycles: 100,
            instructions: 250,
            dram_read_bytes: 640,
            dram_write_bytes: 360,
            dram_busy_cycles: 50,
            ..RunStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(s.dram_bytes(), 1000);
        assert!((s.dram_bandwidth() - 10.0).abs() < 1e-12);
        assert!((s.dram_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_does_not_divide_by_zero() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.dram_bandwidth(), 0.0);
        assert_eq!(s.dram_utilization(), 0.0);
    }
}

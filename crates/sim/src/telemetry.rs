//! Process-wide simulated-work counters.
//!
//! The sweeps run thousands of independent engines across worker threads;
//! per-run [`RunStats`](crate::stats::RunStats) can't answer "how fast is
//! the simulator itself" without threading counters through every layer.
//! Instead, every finished or reset engine adds its retired-instruction
//! count to one global atomic, and a [`ThroughputProbe`] brackets a sweep
//! to report simulated instructions per wall-clock second (MIPS).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static SIM_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static COMPILED_STREAMS: AtomicU64 = AtomicU64::new(0);
static COMPILED_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static REPLAYED_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static STREAM_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static STREAM_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CYCLE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CYCLE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static SKIPPED_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static ANALYZED_STREAMS: AtomicU64 = AtomicU64::new(0);
static ANALYZED_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static ANALYSIS_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ANALYSIS_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static SERVE_REQUESTS: AtomicU64 = AtomicU64::new(0);
static SERVE_MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static SERVE_COALESCED: AtomicU64 = AtomicU64::new(0);

/// Credits `n` retired instructions to the process-wide counter. Called by
/// the engine on `finish()` and `reset()`; an engine dropped mid-run is
/// not counted.
pub(crate) fn record_instructions(n: u64) {
    SIM_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Credits one compiled stream of `n` instructions (called when a
/// [`CompiledStream`](crate::compile::CompiledStream) is built).
pub(crate) fn record_compiled(n: u64) {
    COMPILED_STREAMS.fetch_add(1, Ordering::Relaxed);
    COMPILED_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Credits `n` instructions retired through the replay path (a subset of
/// the instructions [`record_instructions`] counts).
pub(crate) fn record_replayed(n: u64) {
    REPLAYED_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Counts a [`StreamCache`](crate::compile::StreamCache) lookup.
pub(crate) fn record_stream_cache(hit: bool) {
    let counter = if hit {
        &STREAM_CACHE_HITS
    } else {
        &STREAM_CACHE_MISSES
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Counts a lookup in a (stream-hash, config-hash) → cycle-result memo
/// (the second cache level; `via-bench`'s sweep memo and `via-campaign`'s
/// persistent store both report through this).
pub fn record_cycle_cache(hit: bool) {
    let counter = if hit {
        &CYCLE_CACHE_HITS
    } else {
        &CYCLE_CACHE_MISSES
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Credits `n` instructions whose simulation a cycle-cache hit skipped
/// entirely (they are *not* part of [`simulated_instructions`]; effective
/// sweep throughput counts both).
pub fn record_skipped_instructions(n: u64) {
    SKIPPED_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Credits one statically analyzed stream of `n` instructions (called by
/// [`analyze`](crate::analyze::analyze) on every non-memoized run).
pub(crate) fn record_analyzed(n: u64) {
    ANALYZED_STREAMS.fetch_add(1, Ordering::Relaxed);
    ANALYZED_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Counts an [`AnalysisCache`](crate::analyze::AnalysisCache) lookup.
pub(crate) fn record_analysis_cache(hit: bool) {
    let counter = if hit {
        &ANALYSIS_CACHE_HITS
    } else {
        &ANALYSIS_CACHE_MISSES
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Counts one simulation request accepted by a `campaign serve` front
/// door (whatever layer ends up answering it).
pub fn record_serve_request() {
    SERVE_REQUESTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a serve-mode request answered from a memo layer (session
/// results or the persistent cycle memo) without touching the engine.
pub fn record_serve_memo_hit() {
    SERVE_MEMO_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a serve-mode request coalesced onto an identical in-flight
/// job (one simulation, many answers).
pub fn record_serve_coalesced() {
    SERVE_COALESCED.fetch_add(1, Ordering::Relaxed);
}

/// Total simulated instructions retired by all engines in this process,
/// across all threads. Monotonic; diff two readings to bracket a sweep.
pub fn simulated_instructions() -> u64 {
    SIM_INSTRUCTIONS.load(Ordering::Relaxed)
}

/// A point-in-time reading of every process-wide counter. All counters are
/// monotonic; subtract two snapshots (see [`TelemetrySnapshot::since`]) to
/// attribute work to one stretch of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Instructions retired by engines (interpreted + replayed).
    pub instructions: u64,
    /// Compiled streams built.
    pub compiled_streams: u64,
    /// Instructions across all compiled streams.
    pub compiled_instructions: u64,
    /// Instructions retired through the replay path.
    pub replayed_instructions: u64,
    /// Compiled-stream cache hits.
    pub stream_cache_hits: u64,
    /// Compiled-stream cache misses.
    pub stream_cache_misses: u64,
    /// Cycle-memo hits ((stream-hash, config-hash) → cycles).
    pub cycle_cache_hits: u64,
    /// Cycle-memo misses.
    pub cycle_cache_misses: u64,
    /// Instructions never simulated thanks to cycle-memo hits.
    pub skipped_instructions: u64,
    /// Streams run through the static analyzer (non-memoized).
    pub analyzed_streams: u64,
    /// Instructions across all analyzed streams.
    pub analyzed_instructions: u64,
    /// Analysis-report memo hits ((stream-hash, analyze-config) → report).
    pub analysis_cache_hits: u64,
    /// Analysis-report memo misses.
    pub analysis_cache_misses: u64,
    /// Simulation requests accepted by `campaign serve`.
    pub serve_requests: u64,
    /// Serve requests answered from a memo layer without simulating.
    pub serve_memo_hits: u64,
    /// Serve requests coalesced onto an identical in-flight job.
    pub serve_coalesced: u64,
}

impl TelemetrySnapshot {
    /// The counter deltas accumulated since an `earlier` snapshot.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            instructions: self.instructions - earlier.instructions,
            compiled_streams: self.compiled_streams - earlier.compiled_streams,
            compiled_instructions: self.compiled_instructions - earlier.compiled_instructions,
            replayed_instructions: self.replayed_instructions - earlier.replayed_instructions,
            stream_cache_hits: self.stream_cache_hits - earlier.stream_cache_hits,
            stream_cache_misses: self.stream_cache_misses - earlier.stream_cache_misses,
            cycle_cache_hits: self.cycle_cache_hits - earlier.cycle_cache_hits,
            cycle_cache_misses: self.cycle_cache_misses - earlier.cycle_cache_misses,
            skipped_instructions: self.skipped_instructions - earlier.skipped_instructions,
            analyzed_streams: self.analyzed_streams - earlier.analyzed_streams,
            analyzed_instructions: self.analyzed_instructions - earlier.analyzed_instructions,
            analysis_cache_hits: self.analysis_cache_hits - earlier.analysis_cache_hits,
            analysis_cache_misses: self.analysis_cache_misses - earlier.analysis_cache_misses,
            serve_requests: self.serve_requests - earlier.serve_requests,
            serve_memo_hits: self.serve_memo_hits - earlier.serve_memo_hits,
            serve_coalesced: self.serve_coalesced - earlier.serve_coalesced,
        }
    }

    /// Instructions accounted for in total: simulated plus cycle-memo
    /// skipped. Effective sweep MIPS divides this by wall-clock seconds.
    pub fn effective_instructions(&self) -> u64 {
        self.instructions + self.skipped_instructions
    }

    /// A one-line human-readable summary of the compile/replay/memo split
    /// (used by the `campaign`, `scorecard`, and `stall_report` binaries).
    pub fn render(&self) -> String {
        let mut line = format!(
            "compile/replay: {} streams compiled ({} instr), {} instr replayed, \
             {} instr memo-skipped | stream cache {}/{} hit, cycle memo {}/{} hit \
             | analyzed {} streams ({} instr), analysis memo {}/{} hit",
            self.compiled_streams,
            self.compiled_instructions,
            self.replayed_instructions,
            self.skipped_instructions,
            self.stream_cache_hits,
            self.stream_cache_hits + self.stream_cache_misses,
            self.cycle_cache_hits,
            self.cycle_cache_hits + self.cycle_cache_misses,
            self.analyzed_streams,
            self.analyzed_instructions,
            self.analysis_cache_hits,
            self.analysis_cache_hits + self.analysis_cache_misses,
        );
        if self.serve_requests > 0 {
            line.push_str(&format!(
                " | serve {} requests ({} memo, {} coalesced)",
                self.serve_requests, self.serve_memo_hits, self.serve_coalesced,
            ));
        }
        line
    }
}

/// Reads every process-wide counter at once.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        instructions: SIM_INSTRUCTIONS.load(Ordering::Relaxed),
        compiled_streams: COMPILED_STREAMS.load(Ordering::Relaxed),
        compiled_instructions: COMPILED_INSTRUCTIONS.load(Ordering::Relaxed),
        replayed_instructions: REPLAYED_INSTRUCTIONS.load(Ordering::Relaxed),
        stream_cache_hits: STREAM_CACHE_HITS.load(Ordering::Relaxed),
        stream_cache_misses: STREAM_CACHE_MISSES.load(Ordering::Relaxed),
        cycle_cache_hits: CYCLE_CACHE_HITS.load(Ordering::Relaxed),
        cycle_cache_misses: CYCLE_CACHE_MISSES.load(Ordering::Relaxed),
        skipped_instructions: SKIPPED_INSTRUCTIONS.load(Ordering::Relaxed),
        analyzed_streams: ANALYZED_STREAMS.load(Ordering::Relaxed),
        analyzed_instructions: ANALYZED_INSTRUCTIONS.load(Ordering::Relaxed),
        analysis_cache_hits: ANALYSIS_CACHE_HITS.load(Ordering::Relaxed),
        analysis_cache_misses: ANALYSIS_CACHE_MISSES.load(Ordering::Relaxed),
        serve_requests: SERVE_REQUESTS.load(Ordering::Relaxed),
        serve_memo_hits: SERVE_MEMO_HITS.load(Ordering::Relaxed),
        serve_coalesced: SERVE_COALESCED.load(Ordering::Relaxed),
    }
}

/// Brackets a stretch of simulation: construct with
/// [`ThroughputProbe::start`] before a sweep, then read the simulated
/// instruction delta, elapsed wall-clock, and MIPS.
#[derive(Debug)]
pub struct ThroughputProbe {
    start_instructions: u64,
    started: Instant,
}

impl ThroughputProbe {
    /// Snapshots the counter and the clock.
    pub fn start() -> Self {
        ThroughputProbe {
            start_instructions: simulated_instructions(),
            started: Instant::now(),
        }
    }

    /// Simulated instructions retired since the probe started.
    pub fn instructions(&self) -> u64 {
        simulated_instructions() - self.start_instructions
    }

    /// Wall-clock time since the probe started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Millions of simulated instructions per wall-clock second.
    pub fn mips(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.instructions() as f64 / 1e6 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, MemConfig};
    use crate::engine::Engine;
    use crate::prog::AluKind;

    #[test]
    fn finish_and_reset_credit_the_global_counter() {
        let probe = ThroughputProbe::start();
        let mut e = Engine::new(CoreConfig::default(), MemConfig::default());
        for _ in 0..25 {
            e.scalar_op(AluKind::Int, &[]);
        }
        e.reset(); // 25 credited here
        for _ in 0..10 {
            e.scalar_op(AluKind::Int, &[]);
        }
        e.finish(); // 10 more
                    // Other tests run concurrently, so only a lower bound is exact.
        assert!(probe.instructions() >= 35);
        assert!(probe.elapsed() > Duration::ZERO);
    }

    #[test]
    fn snapshot_since_computes_deltas() {
        let before = snapshot();
        record_cycle_cache(true);
        record_cycle_cache(false);
        record_skipped_instructions(500);
        // Other tests run concurrently, so deltas are lower bounds.
        let d = snapshot().since(&before);
        assert!(d.cycle_cache_hits >= 1);
        assert!(d.cycle_cache_misses >= 1);
        assert!(d.skipped_instructions >= 500);
        assert!(d.effective_instructions() >= d.instructions + 500);
        assert!(d.render().contains("cycle memo"));
    }
}

//! Process-wide simulated-work counters.
//!
//! The sweeps run thousands of independent engines across worker threads;
//! per-run [`RunStats`](crate::stats::RunStats) can't answer "how fast is
//! the simulator itself" without threading counters through every layer.
//! Instead, every finished or reset engine adds its retired-instruction
//! count to one global atomic, and a [`ThroughputProbe`] brackets a sweep
//! to report simulated instructions per wall-clock second (MIPS).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static SIM_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Credits `n` retired instructions to the process-wide counter. Called by
/// the engine on `finish()` and `reset()`; an engine dropped mid-run is
/// not counted.
pub(crate) fn record_instructions(n: u64) {
    SIM_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Total simulated instructions retired by all engines in this process,
/// across all threads. Monotonic; diff two readings to bracket a sweep.
pub fn simulated_instructions() -> u64 {
    SIM_INSTRUCTIONS.load(Ordering::Relaxed)
}

/// Brackets a stretch of simulation: construct with
/// [`ThroughputProbe::start`] before a sweep, then read the simulated
/// instruction delta, elapsed wall-clock, and MIPS.
#[derive(Debug)]
pub struct ThroughputProbe {
    start_instructions: u64,
    started: Instant,
}

impl ThroughputProbe {
    /// Snapshots the counter and the clock.
    pub fn start() -> Self {
        ThroughputProbe {
            start_instructions: simulated_instructions(),
            started: Instant::now(),
        }
    }

    /// Simulated instructions retired since the probe started.
    pub fn instructions(&self) -> u64 {
        simulated_instructions() - self.start_instructions
    }

    /// Wall-clock time since the probe started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Millions of simulated instructions per wall-clock second.
    pub fn mips(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.instructions() as f64 / 1e6 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, MemConfig};
    use crate::engine::Engine;
    use crate::prog::AluKind;

    #[test]
    fn finish_and_reset_credit_the_global_counter() {
        let probe = ThroughputProbe::start();
        let mut e = Engine::new(CoreConfig::default(), MemConfig::default());
        for _ in 0..25 {
            e.scalar_op(AluKind::Int, &[]);
        }
        e.reset(); // 25 credited here
        for _ in 0..10 {
            e.scalar_op(AluKind::Int, &[]);
        }
        e.finish(); // 10 more
                    // Other tests run concurrently, so only a lower bound is exact.
        assert!(probe.instructions() >= 35);
        assert!(probe.elapsed() > Duration::ZERO);
    }
}

//! Optional per-instruction lifecycle recording (a gem5-style pipeline
//! trace) for debugging kernels and the model itself.
//!
//! Recording is off by default (the experiment sweeps retire millions of
//! instructions); enable it with [`crate::Engine::enable_timeline`] and a
//! bounded capacity — the engine keeps the most recent entries.

use std::collections::VecDeque;

/// One retired instruction's lifecycle timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Dynamic instruction number (0-based).
    pub index: u64,
    /// Compact operation tag (e.g. `"load"`, `"gather"`, `"custom"`).
    pub kind: &'static str,
    /// Cycle the instruction entered the window.
    pub fetch: u64,
    /// Cycle all source operands were ready.
    pub ready: u64,
    /// Cycle the result became available.
    pub complete: u64,
    /// Cycle the instruction committed.
    pub commit: u64,
}

impl TimelineEntry {
    /// Cycles spent waiting for operands after fetch.
    pub fn wait_cycles(&self) -> u64 {
        self.ready.saturating_sub(self.fetch)
    }

    /// Execution latency (ready → complete).
    pub fn exec_cycles(&self) -> u64 {
        self.complete.saturating_sub(self.ready)
    }
}

/// A bounded ring of the most recent [`TimelineEntry`] records.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    capacity: usize,
    entries: VecDeque<TimelineEntry>,
}

impl Timeline {
    /// A timeline keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Timeline {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Records one entry, evicting the oldest when full.
    pub fn record(&mut self, entry: TimelineEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TimelineEntry> {
        self.entries.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the recorded window as an aligned text table
    /// (`idx kind fetch ready complete commit`).
    pub fn render(&self) -> String {
        let mut out = String::from("   idx  kind      fetch    ready complete   commit\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:>6}  {:<8} {:>7} {:>8} {:>8} {:>8}\n",
                e.index, e.kind, e.fetch, e.ready, e.complete, e.commit
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: u64) -> TimelineEntry {
        TimelineEntry {
            index,
            kind: "load",
            fetch: index,
            ready: index + 1,
            complete: index + 5,
            commit: index + 6,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Timeline::new(3);
        for i in 0..5 {
            t.record(entry(i));
        }
        assert_eq!(t.len(), 3);
        let first = t.entries().next().unwrap();
        assert_eq!(first.index, 2);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Timeline::new(0);
        t.record(entry(0));
        assert!(t.is_empty());
    }

    #[test]
    fn derived_metrics() {
        let e = entry(10);
        assert_eq!(e.wait_cycles(), 1);
        assert_eq!(e.exec_cycles(), 4);
    }

    #[test]
    fn render_contains_rows() {
        let mut t = Timeline::new(4);
        t.record(entry(7));
        let text = t.render();
        assert!(text.contains("load"));
        assert!(text.contains('7'));
        assert!(text.starts_with("   idx"));
    }
}

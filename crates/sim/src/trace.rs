//! `via-trace`: stall-cause accounting and structured event traces.
//!
//! The engine's end-to-end cycle count says *that* a kernel is slow, not
//! *why*. This module attributes every simulated cycle to exactly one
//! cause, so the paper's explanatory claims — gather/scatter
//! serialization, branch-hostile index matching, DRAM bandwidth
//! saturation (paper §VI) — become observed quantities instead of
//! assertions.
//!
//! # Accounting model
//!
//! The engine is an interval-style analytical model: instructions overlap
//! arbitrarily, so "cycles instruction *i* waited" double-counts time.
//! Instead we attribute the **commit frontier**: commit times are monotone
//! non-decreasing, so each pushed instruction advances the frontier by
//! `commit − previous_commit` cycles, and those cycles — and only those —
//! are charged to that instruction. The frontier delta is tiled with the
//! instruction's own lifecycle boundaries (fetch gate → fetch → ready →
//! issue → complete → commit), each clipped segment booked to one
//! [`StallCause`]. Summed over a run, the attribution equals the final
//! commit frontier, i.e. exactly [`RunStats::cycles`](crate::RunStats) —
//! the conservation invariant the test suite pins down.
//!
//! A property worth knowing when reading reports: with in-order commit,
//! by the time the frontier reaches an instruction its producers have
//! already committed, so *shadow* waits (operand dependences, the
//! at-commit gate) overlap work already charged to older instructions and
//! largely fold into the producer's own cause — a dependent FMA chain
//! reads as `vec/active` (the unit is the critical path), a load-use
//! chain as `load/dram_bw`. This is the classic CPI-stack behaviour, not
//! an accounting bug; [`StallCause::Dependency`] still surfaces fence
//! drains and redirect shadows.
//!
//! Accounting is always compiled and zero-cost when disabled (one branch
//! per push); timing math is never touched, so golden cycle counts are
//! bit-identical with tracing on or off.
//!
//! # Event traces
//!
//! [`Engine::enable_trace_events`](crate::Engine::enable_trace_events)
//! additionally records a bounded ring of per-instruction lifecycle
//! events (plus region begin/end and instant markers such as SSPM mode
//! transitions) which [`Engine::chrome_trace`](crate::Engine::chrome_trace)
//! exports as Chrome trace-event JSON loadable in Perfetto
//! (<https://ui.perfetto.dev>).

use crate::prog::Op;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Where a frontier cycle went. Every simulated cycle is attributed to
/// exactly one of these; [`StallCause::Active`] is the non-stall residual
/// (issue/execute/transfer time on the critical path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum StallCause {
    /// Fetch blocked because the instruction `rob_size` ahead had not
    /// committed.
    RobFull = 0,
    /// Fetch blocked behind a branch-mispredict redirect (or an explicit
    /// fence's serialization point).
    BranchRedirect,
    /// Fetch-width serialization: the front end delivers at most
    /// `fetch_width` instructions per cycle.
    FetchWidth,
    /// Waiting on source operands (producer had not completed), or on a
    /// fence draining older instructions.
    Dependency,
    /// Waiting for a scalar/vector ALU or a custom (FIVU) unit slot.
    FuSlot,
    /// Waiting for a load-port slot (includes gather element
    /// serialization).
    LoadPort,
    /// Waiting for a store-port slot (includes scatter element
    /// serialization).
    StorePort,
    /// Explicit store-buffer drain delay modeled by kernels
    /// ([`Op::Delay`]).
    StoreBufferDrain,
    /// Queuing for the DRAM channel's bandwidth calendar.
    DramBandwidth,
    /// A commit-serialized custom (VIA) op waiting for all older
    /// non-custom instructions to complete (paper §IV-E).
    CommitGate,
    /// Commit-width serialization and in-order commit behind the frontier.
    CommitWidth,
    /// Not a stall: issue/execute/memory-transfer time on the critical
    /// path.
    Active,
}

/// Number of [`StallCause`] variants.
pub const CAUSE_COUNT: usize = 12;

impl StallCause {
    /// All causes, in display order.
    pub const ALL: [StallCause; CAUSE_COUNT] = [
        StallCause::RobFull,
        StallCause::BranchRedirect,
        StallCause::FetchWidth,
        StallCause::Dependency,
        StallCause::FuSlot,
        StallCause::LoadPort,
        StallCause::StorePort,
        StallCause::StoreBufferDrain,
        StallCause::DramBandwidth,
        StallCause::CommitGate,
        StallCause::CommitWidth,
        StallCause::Active,
    ];

    /// Short stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::RobFull => "rob_full",
            StallCause::BranchRedirect => "branch_redirect",
            StallCause::FetchWidth => "fetch_width",
            StallCause::Dependency => "dependency",
            StallCause::FuSlot => "fu_slot",
            StallCause::LoadPort => "load_port",
            StallCause::StorePort => "store_port",
            StallCause::StoreBufferDrain => "sb_drain",
            StallCause::DramBandwidth => "dram_bw",
            StallCause::CommitGate => "commit_gate",
            StallCause::CommitWidth => "commit_width",
            StallCause::Active => "active",
        }
    }

    /// Whether this cause is a stall (everything except
    /// [`StallCause::Active`]).
    pub fn is_stall(self) -> bool {
        self != StallCause::Active
    }
}

/// Opcode class an attribution or event is filed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum OpClass {
    /// Scalar ALU ops.
    Scalar = 0,
    /// Vector ALU ops.
    Vec,
    /// Unit-stride loads.
    Load,
    /// Unit-stride stores.
    Store,
    /// Indexed gathers.
    Gather,
    /// Indexed scatters.
    Scatter,
    /// Custom (FIVU / `vldx*`) ops.
    Custom,
    /// Data-dependent branches.
    Branch,
    /// Pure timing delays.
    Delay,
    /// Serialization fences.
    Fence,
}

/// Number of [`OpClass`] variants.
pub const CLASS_COUNT: usize = 10;

impl OpClass {
    /// All classes, in display order.
    pub const ALL: [OpClass; CLASS_COUNT] = [
        OpClass::Scalar,
        OpClass::Vec,
        OpClass::Load,
        OpClass::Store,
        OpClass::Gather,
        OpClass::Scatter,
        OpClass::Custom,
        OpClass::Branch,
        OpClass::Delay,
        OpClass::Fence,
    ];

    /// The class of an op.
    pub fn of(op: &Op) -> OpClass {
        match op {
            Op::Scalar { .. } => OpClass::Scalar,
            Op::Vec { .. } => OpClass::Vec,
            Op::Load { .. } => OpClass::Load,
            Op::Store { .. } => OpClass::Store,
            Op::Gather { .. } => OpClass::Gather,
            Op::Scatter { .. } => OpClass::Scatter,
            Op::Custom { .. } => OpClass::Custom,
            Op::Branch { .. } => OpClass::Branch,
            Op::Delay { .. } => OpClass::Delay,
            Op::Fence => OpClass::Fence,
        }
    }

    /// Short stable name (matches [`Op::tag`]).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Scalar => "scalar",
            OpClass::Vec => "vec",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Gather => "gather",
            OpClass::Scatter => "scatter",
            OpClass::Custom => "custom",
            OpClass::Branch => "branch",
            OpClass::Delay => "delay",
            OpClass::Fence => "fence",
        }
    }
}

/// Deepest memory level a traced instruction's accesses reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum MemLevel {
    /// No memory access.
    #[default]
    None = 0,
    /// Every access hit in L1.
    L1 = 1,
    /// Deepest access resolved in L2.
    L2 = 2,
    /// Deepest access resolved in L3.
    L3 = 3,
    /// Deepest access went to DRAM.
    Dram = 4,
}

impl MemLevel {
    pub(crate) fn from_mark(mark: u8) -> MemLevel {
        match mark {
            1 => MemLevel::L1,
            2 => MemLevel::L2,
            3 => MemLevel::L3,
            4 => MemLevel::Dram,
            _ => MemLevel::None,
        }
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::None => "-",
            MemLevel::L1 => "l1",
            MemLevel::L2 => "l2",
            MemLevel::L3 => "l3",
            MemLevel::Dram => "dram",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// One instruction's lifecycle.
    Inst {
        /// Push index (position in the dynamic stream).
        index: u64,
        /// Opcode class.
        class: OpClass,
        /// Region id at push time (see [`StallReport::regions`]).
        region: u16,
        /// Fetch cycle.
        fetch: u64,
        /// Issue cycle (operands ready and unit acquired).
        issue: u64,
        /// Completion cycle.
        complete: u64,
        /// Commit cycle.
        commit: u64,
        /// Deepest memory level touched.
        level: MemLevel,
    },
    /// An instant marker (e.g. an SSPM mode transition).
    Marker {
        /// Marker label.
        name: &'static str,
        /// Commit-frontier cycle at which it was recorded.
        at: u64,
    },
    /// A region was entered.
    RegionBegin {
        /// Region id.
        region: u16,
        /// Commit-frontier cycle at entry.
        at: u64,
    },
    /// A region was left.
    RegionEnd {
        /// Region id.
        region: u16,
        /// Commit-frontier cycle at exit.
        at: u64,
    },
}

/// Bounded ring buffer of [`TraceEvent`]s: the sweeps retire millions of
/// instructions, so only the most recent `capacity` events are kept and
/// older ones are counted as dropped.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventRing {
    /// A ring keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all retained events (capacity kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

/// Per-region stall accumulator inside the engine.
#[derive(Debug, Clone)]
pub(crate) struct RegionAcc {
    pub(crate) name: &'static str,
    pub(crate) cycles: [u64; CAUSE_COUNT],
}

/// Engine-side trace state: accounting accumulators, the region stack, and
/// the optional event ring. Always present; a disabled state costs one
/// branch per push.
#[derive(Debug, Default)]
pub(crate) struct TraceState {
    pub(crate) accounting: bool,
    pub(crate) by_class: [[u64; CAUSE_COUNT]; CLASS_COUNT],
    pub(crate) regions: Vec<RegionAcc>,
    pub(crate) stack: Vec<u16>,
    pub(crate) current: u16,
    pub(crate) events: Option<EventRing>,
}

impl TraceState {
    /// Whether pushes need any trace work at all.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.accounting || self.events.is_some()
    }

    /// Ensures the root region exists (id 0).
    pub(crate) fn ensure_root(&mut self) {
        if self.regions.is_empty() {
            self.regions.push(RegionAcc {
                name: "(top)",
                cycles: [0; CAUSE_COUNT],
            });
        }
    }

    /// Interns `name`, returning its region id.
    pub(crate) fn intern(&mut self, name: &'static str) -> u16 {
        self.ensure_root();
        if let Some(i) = self.regions.iter().position(|r| r.name == name) {
            return i as u16;
        }
        assert!(self.regions.len() < u16::MAX as usize, "too many regions");
        self.regions.push(RegionAcc {
            name,
            cycles: [0; CAUSE_COUNT],
        });
        (self.regions.len() - 1) as u16
    }

    /// Charges `d` frontier cycles to `cause` under `class` and the
    /// current region.
    #[inline]
    pub(crate) fn charge(&mut self, class: OpClass, cause: StallCause, d: u64) {
        self.by_class[class as usize][cause as usize] += d;
        self.regions[self.current as usize].cycles[cause as usize] += d;
    }

    /// Clears all accumulated data and the region stack; keeps the enabled
    /// flags and the ring capacity (so a reused engine keeps tracing).
    pub(crate) fn clear(&mut self) {
        self.by_class = [[0; CAUSE_COUNT]; CLASS_COUNT];
        self.regions.clear();
        self.stack.clear();
        self.current = 0;
        if self.accounting || self.events.is_some() {
            self.ensure_root();
        }
        if let Some(ring) = &mut self.events {
            ring.clear();
        }
    }

    /// Region name for an id (export helper).
    pub(crate) fn region_name(&self, id: u16) -> &'static str {
        self.regions
            .get(id as usize)
            .map(|r| r.name)
            .unwrap_or("(top)")
    }
}

/// Per-region stall totals in a [`StallReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionStalls {
    /// The region label the kernel pushed (`"(top)"` for unlabeled code).
    pub name: String,
    /// Cycles per [`StallCause`], indexed by `cause as usize`.
    pub cycles: [u64; CAUSE_COUNT],
}

/// A snapshot of stall-cause accounting for one run (or a merge of many).
///
/// Conservation invariant: [`StallReport::attributed`] equals
/// [`StallReport::total_cycles`] exactly — every simulated cycle is
/// attributed to exactly one cause.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Total simulated cycles covered by this report.
    pub total_cycles: u64,
    /// Cycles per opcode class per cause: `by_class[class][cause]`.
    pub by_class: [[u64; CAUSE_COUNT]; CLASS_COUNT],
    /// Per-region totals, in interning order (`regions[0]` is the
    /// top-level region).
    pub regions: Vec<RegionStalls>,
}

impl StallReport {
    /// Total cycles attributed across all classes and causes.
    pub fn attributed(&self) -> u64 {
        self.by_class.iter().flatten().sum()
    }

    /// Total cycles for one cause across all classes.
    pub fn cause_total(&self, cause: StallCause) -> u64 {
        self.by_class.iter().map(|row| row[cause as usize]).sum()
    }

    /// Total cycles attributed to one opcode class across all causes.
    pub fn class_total(&self, class: OpClass) -> u64 {
        self.by_class[class as usize].iter().sum()
    }

    /// Cycles for one (class, cause) cell.
    pub fn cell(&self, class: OpClass, cause: StallCause) -> u64 {
        self.by_class[class as usize][cause as usize]
    }

    /// Non-stall (issue/execute) cycles.
    pub fn active(&self) -> u64 {
        self.cause_total(StallCause::Active)
    }

    /// Total stall cycles (everything except [`StallCause::Active`]).
    pub fn stalled(&self) -> u64 {
        self.attributed() - self.active()
    }

    /// Fraction of total cycles spent on `cause` (0 when empty).
    pub fn share(&self, cause: StallCause) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.cause_total(cause) as f64 / self.total_cycles as f64
    }

    /// Accumulates another report into this one. Class/cause cells add;
    /// regions merge by name (unknown names are appended).
    pub fn merge(&mut self, other: &StallReport) {
        self.total_cycles += other.total_cycles;
        for (mine, theirs) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += *t;
            }
        }
        for region in &other.regions {
            if let Some(mine) = self.regions.iter_mut().find(|r| r.name == region.name) {
                for (m, t) in mine.cycles.iter_mut().zip(region.cycles.iter()) {
                    *m += *t;
                }
            } else {
                self.regions.push(region.clone());
            }
        }
    }

    /// The `n` largest (class, cause) stall cells, largest first
    /// ([`StallCause::Active`] excluded).
    pub fn top_stalls(&self, n: usize) -> Vec<(OpClass, StallCause, u64)> {
        let mut cells = Vec::new();
        for &class in &OpClass::ALL {
            for &cause in &StallCause::ALL {
                if !cause.is_stall() {
                    continue;
                }
                let c = self.cell(class, cause);
                if c > 0 {
                    cells.push((class, cause, c));
                }
            }
        }
        cells.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        cells.truncate(n);
        cells
    }

    /// Compact text report: totals line, top-`n` stall table, and
    /// per-region rollup.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        let total = self.total_cycles.max(1);
        let _ = writeln!(
            out,
            "cycles {}  active {} ({:.1}%)  stalled {} ({:.1}%)",
            self.total_cycles,
            self.active(),
            100.0 * self.active() as f64 / total as f64,
            self.stalled(),
            100.0 * self.stalled() as f64 / total as f64,
        );
        let _ = writeln!(
            out,
            "  {:<10} {:<16} {:>14} {:>7}",
            "class", "cause", "cycles", "share"
        );
        for (class, cause, cycles) in self.top_stalls(n) {
            let _ = writeln!(
                out,
                "  {:<10} {:<16} {:>14} {:>6.1}%",
                class.name(),
                cause.name(),
                cycles,
                100.0 * cycles as f64 / total as f64,
            );
        }
        let labeled: Vec<&RegionStalls> = self
            .regions
            .iter()
            .filter(|r| r.cycles.iter().any(|&c| c > 0))
            .collect();
        if labeled.len() > 1 {
            let _ = writeln!(out, "  regions:");
            for region in labeled {
                let sum: u64 = region.cycles.iter().sum();
                let active = region.cycles[StallCause::Active as usize];
                let _ = writeln!(
                    out,
                    "    {:<18} {:>14} cycles  ({:.1}% active)",
                    region.name,
                    sum,
                    100.0 * active as f64 / sum.max(1) as f64,
                );
            }
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a ring of events as Chrome trace-event JSON (the
/// `traceEvents` array format), loadable in Perfetto or `chrome://tracing`.
///
/// Instructions become `"ph":"X"` duration slices on one track per opcode
/// class; markers become `"ph":"i"` instants; regions become `"ph":"B"` /
/// `"ph":"E"` spans on a dedicated track. Timestamps are simulated cycles
/// and are emitted in non-decreasing order.
pub fn chrome_trace_json(ring: &EventRing, region_name: impl Fn(u16) -> &'static str) -> String {
    const REGION_TID: usize = CLASS_COUNT + 1;
    // (ts, seq, fragment): stable order by timestamp.
    let mut entries: Vec<(u64, usize, String)> = Vec::with_capacity(ring.len() + CLASS_COUNT);
    for (seq, event) in ring.events().enumerate() {
        match event {
            TraceEvent::Inst {
                index,
                class,
                region,
                fetch,
                issue,
                complete,
                commit,
                level,
            } => {
                let dur = commit.saturating_sub(*fetch).max(1);
                entries.push((
                    *fetch,
                    seq,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"inst\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":0,\"tid\":{},\"args\":{{\"index\":{},\"region\":\"{}\",\
                         \"issue\":{},\"complete\":{},\"level\":\"{}\"}}}}",
                        class.name(),
                        fetch,
                        dur,
                        *class as usize + 1,
                        index,
                        escape_json(region_name(*region)),
                        issue,
                        complete,
                        level.name(),
                    ),
                ));
            }
            TraceEvent::Marker { name, at } => {
                entries.push((
                    *at,
                    seq,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"marker\",\"ph\":\"i\",\"s\":\"g\",\
                         \"ts\":{},\"pid\":0,\"tid\":0}}",
                        escape_json(name),
                        at,
                    ),
                ));
            }
            TraceEvent::RegionBegin { region, at } => {
                entries.push((
                    *at,
                    seq,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"region\",\"ph\":\"B\",\"ts\":{},\
                         \"pid\":0,\"tid\":{}}}",
                        escape_json(region_name(*region)),
                        at,
                        REGION_TID,
                    ),
                ));
            }
            TraceEvent::RegionEnd { region, at } => {
                entries.push((
                    *at,
                    seq,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"region\",\"ph\":\"E\",\"ts\":{},\
                         \"pid\":0,\"tid\":{}}}",
                        escape_json(region_name(*region)),
                        at,
                        REGION_TID,
                    ),
                ));
            }
        }
    }
    entries.sort_by_key(|&(ts, seq, _)| (ts, seq));

    let mut out = String::from("{\"traceEvents\":[");
    // Track-name metadata first (ts-less, allowed anywhere).
    let mut first = true;
    for &class in &OpClass::ALL {
        let _ = write!(
            out,
            "{}{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            if first { "" } else { "," },
            class as usize + 1,
            class.name(),
        );
        first = false;
    }
    let _ = write!(
        out,
        ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{REGION_TID},\
         \"args\":{{\"name\":\"regions\"}}}}"
    );
    let _ = write!(
        out,
        ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"markers\"}}}}"
    );
    for (_, _, fragment) in &entries {
        out.push(',');
        out.push_str(fragment);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_names_are_unique() {
        let mut names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CAUSE_COUNT);
    }

    #[test]
    fn class_of_covers_every_op() {
        assert_eq!(OpClass::of(&Op::Fence), OpClass::Fence);
        assert_eq!(OpClass::of(&Op::Delay { cycles: 3 }), OpClass::Delay);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut ring = EventRing::new(2);
        for i in 0..5 {
            ring.record(TraceEvent::Marker { name: "m", at: i });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let ats: Vec<u64> = ring
            .events()
            .map(|e| match e {
                TraceEvent::Marker { at, .. } => *at,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ats, vec![3, 4]);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn report_merge_adds_cells_and_regions() {
        let mut a = StallReport {
            total_cycles: 10,
            ..StallReport::default()
        };
        a.by_class[OpClass::Load as usize][StallCause::DramBandwidth as usize] = 6;
        a.regions.push(RegionStalls {
            name: "row".to_string(),
            cycles: [0; CAUSE_COUNT],
        });
        let mut b = StallReport {
            total_cycles: 5,
            ..StallReport::default()
        };
        b.by_class[OpClass::Load as usize][StallCause::DramBandwidth as usize] = 2;
        b.regions.push(RegionStalls {
            name: "flush".to_string(),
            cycles: [0; CAUSE_COUNT],
        });
        a.merge(&b);
        assert_eq!(a.total_cycles, 15);
        assert_eq!(a.cell(OpClass::Load, StallCause::DramBandwidth), 8);
        assert_eq!(a.regions.len(), 2);
    }

    #[test]
    fn top_stalls_sorts_and_excludes_active() {
        let mut r = StallReport::default();
        r.total_cycles = 100;
        r.by_class[OpClass::Gather as usize][StallCause::LoadPort as usize] = 50;
        r.by_class[OpClass::Load as usize][StallCause::DramBandwidth as usize] = 30;
        r.by_class[OpClass::Scalar as usize][StallCause::Active as usize] = 20;
        let top = r.top_stalls(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (OpClass::Gather, StallCause::LoadPort, 50));
        assert_eq!(top[1], (OpClass::Load, StallCause::DramBandwidth, 30));
        assert!(r.render(5).contains("gather"));
    }

    #[test]
    fn chrome_json_escapes_and_orders() {
        let mut ring = EventRing::new(8);
        ring.record(TraceEvent::Inst {
            index: 1,
            class: OpClass::Load,
            region: 0,
            fetch: 10,
            issue: 10,
            complete: 14,
            commit: 15,
            level: MemLevel::Dram,
        });
        ring.record(TraceEvent::Marker {
            name: "sspm mode: cam",
            at: 5,
        });
        let json = chrome_trace_json(&ring, |_| "(top)");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"load\""));
        // The marker at ts 5 must appear before the instruction at ts 10.
        let marker_pos = json.find("sspm mode: cam").unwrap();
        let inst_pos = json.find("\"cat\":\"inst\"").unwrap();
        assert!(marker_pos < inst_pos);
    }
}

//! Static verification of instruction streams (`via-verify`).
//!
//! Every experiment is only as trustworthy as the dynamic instruction
//! streams the kernels emit: a malformed source register, a gather whose
//! address list disagrees with the machine vector length, or an SSPM op
//! issued in the wrong mode silently corrupts modeled cycle counts instead
//! of failing loudly (the engine's register file returns "ready at cycle 0"
//! for registers no instruction ever produced). This module is the analysis
//! layer that makes those corruptions loud:
//!
//! * [`Verifier`] — a streaming checker with O(1) amortized work per
//!   instruction. The [`Engine`](crate::Engine) runs one over every pushed
//!   instruction in debug builds (panicking on the first error), and
//!   attaches one in release builds when [capture](capture_guard) is on,
//!   so the `verify_programs` binary can sweep every kernel × format with
//!   the shipping optimized code.
//! * [`Program`] + [`verify_program`] — an offline API over a recorded
//!   instruction list, used by negative tests that hand-corrupt streams.
//! * [`Diag`]/[`DiagCode`]/[`Report`] — rustc-style diagnostics
//!   (`error[VIA001]: ...`) with stable machine-readable codes. The SSPM
//!   mode checker in `via-core` reports through the same types via
//!   [`Engine::report_diag`](crate::Engine::report_diag).
//!
//! # Diagnostic codes
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | VIA001 | error | source register never defined by an earlier instruction |
//! | VIA002 | error | register outside the program's declared register count |
//! | VIA003 | error | instruction depends on its own first definition (cycle) |
//! | VIA004 | error | gather/scatter address list empty or longer than VL |
//! | VIA005 | warning | duplicate source registers |
//! | VIA006 | error | custom (FIVU) op on a core with no custom unit |
//! | VIA007 | warning | degenerate operand (zero-byte access, zero-cost custom op) |
//! | VIA008 | error | gather overlapping a pending scatter with no ordering |
//! | VIA009 | error | CAM write over a dirty direct-mapped low region |
//! | VIA010 | error | direct write into CAM-owned SSPM entries |
//! | VIA011 | error | index-table read while no indices are tracked |
//! | VIA012 | warning | CAM insertions may exceed the index-table capacity |
//! | VIA101 | analysis | register write dead: redefined before any read |
//! | VIA102 | analysis | stored bytes fully overwritten before any read |
//! | VIA103 | analysis | gather must-aliases an earlier unordered scatter |
//! | VIA104 | analysis | proven CAM index-table occupancy above capacity |
//!
//! "Violations" throughout the repo means **errors**; warnings are reported
//! but never fail a gate. The `VIA1xx` block is reserved for the whole-stream
//! dataflow passes in [`mod@crate::analyze`]: *analysis* findings are proven
//! facts about a finished stream (inefficiencies, sharpened occupancy
//! bounds), not structural defects, and never fail a gate either.

use crate::config::CoreConfig;
use crate::prog::{Inst, Op, Reg};
use std::cell::{Cell, RefCell};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The stream is structurally usable but suspicious.
    Warning,
    /// The stream would be silently mis-simulated (a *violation*).
    Error,
    /// A proven whole-stream fact from the [`mod@crate::analyze`] passes
    /// (dead work, sharpened occupancy bounds); informational, never a
    /// violation.
    Analysis,
}

/// Stable machine-readable diagnostic codes (`VIA001`..`VIA012`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// VIA001: a source register no earlier instruction defined.
    UndefinedRegister,
    /// VIA002: a register at or beyond the declared register count.
    RegisterOutOfRange,
    /// VIA003: an instruction whose first definition depends on itself.
    SelfDependency,
    /// VIA004: gather/scatter address list empty or longer than the
    /// machine vector length.
    AddrListMismatch,
    /// VIA005: the same register listed twice as a source.
    DuplicateSources,
    /// VIA006: a custom (FIVU) op pushed on a core with no custom unit.
    CustomWithoutUnit,
    /// VIA007: a degenerate operand (zero-byte memory access or a
    /// zero-occupancy/latency custom op).
    DegenerateOperand,
    /// VIA008: a gather reading a line with a pending scatter and no
    /// ordering dependence (gathers cannot forward from the store buffer).
    UnorderedGatherAfterScatter,
    /// VIA009: a CAM write while the direct-mapped low region holds live
    /// data (no intervening `vldxclear`).
    SspmModeConflict,
    /// VIA010: a direct-mapped write into SRAM entries owned by tracked
    /// CAM indices.
    SspmDirectWriteUnderCam,
    /// VIA011: `vldxloadidx` while the element count is provably zero.
    SspmIndexReadEmpty,
    /// VIA012: CAM insertions that may overflow the index table.
    SspmCamOverflowRisk,
    /// VIA101: a register write that is provably dead — the register is
    /// redefined later with no intervening read.
    DeadRegisterWrite,
    /// VIA102: a store whose bytes are all overwritten before any load,
    /// gather, or scatter-read observes them.
    DeadStore,
    /// VIA103: a gather that byte-exactly overlaps an earlier scatter in
    /// the whole stream with no ordering evidence (sharpens the windowed
    /// dynamic VIA008 check).
    MustAliasConflict,
    /// VIA104: a proven upper bound on CAM index-table occupancy that
    /// exceeds the configured capacity (sharpens VIA011/VIA012).
    CamOccupancyBound,
}

impl DiagCode {
    /// The stable `VIAxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::UndefinedRegister => "VIA001",
            DiagCode::RegisterOutOfRange => "VIA002",
            DiagCode::SelfDependency => "VIA003",
            DiagCode::AddrListMismatch => "VIA004",
            DiagCode::DuplicateSources => "VIA005",
            DiagCode::CustomWithoutUnit => "VIA006",
            DiagCode::DegenerateOperand => "VIA007",
            DiagCode::UnorderedGatherAfterScatter => "VIA008",
            DiagCode::SspmModeConflict => "VIA009",
            DiagCode::SspmDirectWriteUnderCam => "VIA010",
            DiagCode::SspmIndexReadEmpty => "VIA011",
            DiagCode::SspmCamOverflowRisk => "VIA012",
            DiagCode::DeadRegisterWrite => "VIA101",
            DiagCode::DeadStore => "VIA102",
            DiagCode::MustAliasConflict => "VIA103",
            DiagCode::CamOccupancyBound => "VIA104",
        }
    }

    /// Alias for [`DiagCode::code`]; the README diagnostic table is kept in
    /// sync against this name.
    pub fn as_str(self) -> &'static str {
        self.code()
    }

    /// Every diagnostic code, in `VIAxxx` order (used by the README table
    /// sync test and exhaustive negative-test coverage checks).
    pub const ALL: [DiagCode; 16] = [
        DiagCode::UndefinedRegister,
        DiagCode::RegisterOutOfRange,
        DiagCode::SelfDependency,
        DiagCode::AddrListMismatch,
        DiagCode::DuplicateSources,
        DiagCode::CustomWithoutUnit,
        DiagCode::DegenerateOperand,
        DiagCode::UnorderedGatherAfterScatter,
        DiagCode::SspmModeConflict,
        DiagCode::SspmDirectWriteUnderCam,
        DiagCode::SspmIndexReadEmpty,
        DiagCode::SspmCamOverflowRisk,
        DiagCode::DeadRegisterWrite,
        DiagCode::DeadStore,
        DiagCode::MustAliasConflict,
        DiagCode::CamOccupancyBound,
    ];

    /// The severity class of this code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::DuplicateSources
            | DiagCode::DegenerateOperand
            | DiagCode::SspmCamOverflowRisk => Severity::Warning,
            DiagCode::DeadRegisterWrite
            | DiagCode::DeadStore
            | DiagCode::MustAliasConflict
            | DiagCode::CamOccupancyBound => Severity::Analysis,
            _ => Severity::Error,
        }
    }

    /// A one-line summary of what the code means.
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::UndefinedRegister => "use of undefined register",
            DiagCode::RegisterOutOfRange => "register out of declared range",
            DiagCode::SelfDependency => "instruction depends on its own first definition",
            DiagCode::AddrListMismatch => "address list length disagrees with the vector length",
            DiagCode::DuplicateSources => "duplicate source registers",
            DiagCode::CustomWithoutUnit => "custom op on a core with no custom unit",
            DiagCode::DegenerateOperand => "degenerate operand",
            DiagCode::UnorderedGatherAfterScatter => "gather overlaps a pending scatter unordered",
            DiagCode::SspmModeConflict => "CAM write over a dirty direct-mapped region",
            DiagCode::SspmDirectWriteUnderCam => "direct write into CAM-owned SSPM entries",
            DiagCode::SspmIndexReadEmpty => "index-table read while no indices are tracked",
            DiagCode::SspmCamOverflowRisk => "CAM insertions may overflow the index table",
            DiagCode::DeadRegisterWrite => "register write is dead (redefined before any read)",
            DiagCode::DeadStore => "stored bytes are fully overwritten before any read",
            DiagCode::MustAliasConflict => "gather must-aliases an earlier unordered scatter",
            DiagCode::CamOccupancyBound => "proven CAM occupancy bound exceeds the index table",
        }
    }
}

/// One diagnostic: a code, the offending instruction, and a specific
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// The stable diagnostic code.
    pub code: DiagCode,
    /// Zero-based index of the offending instruction in the stream.
    pub index: u64,
    /// The instruction's op-class tag (`"gather"`, `"custom"`, ...).
    pub tag: &'static str,
    /// What specifically is wrong.
    pub message: String,
}

impl Diag {
    /// Builds a diagnostic at stream position 0. External producers (e.g.
    /// the SSPM mode checker in `via-core`) use this; the position is
    /// re-stamped when the diagnostic enters a [`Verifier`] via
    /// [`Verifier::push_external`].
    pub fn new(code: DiagCode, tag: &'static str, message: String) -> Self {
        Diag {
            code,
            index: 0,
            tag,
            message,
        }
    }

    /// The severity of this diagnostic (from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic rustc-style:
    ///
    /// ```text
    /// error[VIA001]: use of undefined register
    ///   --> inst #42 (gather)
    ///   = note: source register r7 has no defining instruction
    /// ```
    pub fn render(&self) -> String {
        let level = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Analysis => "analysis",
        };
        format!(
            "{level}[{}]: {}\n  --> inst #{} ({})\n  = note: {}",
            self.code.code(),
            self.code.summary(),
            self.index,
            self.tag,
            self.message
        )
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The outcome of verifying one instruction stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All diagnostics in stream order.
    pub diags: Vec<Diag>,
    /// Instructions checked.
    pub instructions: u64,
}

impl Report {
    /// Number of error-severity diagnostics (the *violations*).
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Number of analysis-severity diagnostics (whole-stream facts from
    /// [`mod@crate::analyze`]; never violations).
    pub fn analysis_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Analysis)
            .count()
    }

    /// Whether the stream has no errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// All diagnostics with the given code.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diag> {
        self.diags.iter().filter(|d| d.code == code).collect()
    }

    /// Renders every diagnostic plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "verified {} instructions: {} errors, {} warnings",
            self.instructions,
            self.error_count(),
            self.warning_count()
        ));
        let analysis = self.analysis_count();
        if analysis > 0 {
            out.push_str(&format!(", {analysis} analysis findings"));
        }
        out.push('\n');
        out
    }
}

/// What the verifier checks a stream against.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Maximum legal gather/scatter address-list length (the machine
    /// vector length in lanes).
    pub max_vl: u32,
    /// Custom (FIVU) units on the core; zero rejects `Op::Custom`.
    pub custom_units: u32,
    /// If set, every register must be below this bound (VIA002).
    pub declared_regs: Option<Reg>,
    /// How many recent scatters stay tracked for the gather-ordering check
    /// (VIA008); older scatters are assumed drained.
    pub scatter_window: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig::from_core(&CoreConfig::default())
    }
}

impl VerifyConfig {
    /// The configuration matching a simulated core.
    pub fn from_core(core: &CoreConfig) -> Self {
        VerifyConfig {
            max_vl: core.vl,
            custom_units: core.custom_units,
            declared_regs: None,
            scatter_window: 32,
        }
    }

    /// Sets the declared register count (enables VIA002).
    pub fn with_declared_regs(mut self, regs: Reg) -> Self {
        self.declared_regs = Some(regs);
        self
    }
}

/// A scatter whose stores may still sit in the store buffer.
#[derive(Debug, Clone)]
struct PendingScatter {
    /// Stream index of the scatter.
    index: u64,
    /// Cache lines it touches (addr / 64), deduplicated.
    lines: Vec<u64>,
    /// Its source registers.
    srcs: Vec<Reg>,
}

/// Sentinel for "register never defined" in the definition-index table.
const UNDEFINED: u64 = 0;

/// The streaming stream checker. Feed instructions in push order with
/// [`Verifier::check`]; collect the [`Report`] when done.
///
/// The checker is deliberately *conservative in the permissive direction*:
/// it must never flag a stream the engine simulates meaningfully (zero
/// false positives over the shipped kernels), so ordering checks accept any
/// plausible ordering evidence (see [`DiagCode::UnorderedGatherAfterScatter`]).
#[derive(Debug, Clone)]
pub struct Verifier {
    cfg: VerifyConfig,
    /// `reg -> 1 + index of defining instruction`; [`UNDEFINED`] if none.
    def_index: Vec<u64>,
    /// Next instruction index.
    index: u64,
    /// Recent scatters, oldest first (bounded by `cfg.scatter_window`).
    pending_scatters: Vec<PendingScatter>,
    /// Scratch for the current gather's line set.
    line_scratch: Vec<u64>,
    report: Report,
}

impl Verifier {
    /// A verifier for the given configuration.
    pub fn new(cfg: VerifyConfig) -> Self {
        Verifier {
            cfg,
            def_index: Vec::new(),
            index: 0,
            pending_scatters: Vec::new(),
            line_scratch: Vec::new(),
            report: Report::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VerifyConfig {
        &self.cfg
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Takes the report, leaving an empty one (stream state is kept).
    pub fn take_report(&mut self) -> Report {
        std::mem::take(&mut self.report)
    }

    /// Clears all stream state and the report.
    pub fn reset(&mut self) {
        self.def_index.clear();
        self.index = 0;
        self.pending_scatters.clear();
        self.report = Report::default();
    }

    fn defined_at(&self, r: Reg) -> u64 {
        self.def_index.get(r as usize).copied().unwrap_or(UNDEFINED)
    }

    fn diag(&mut self, code: DiagCode, tag: &'static str, message: String) {
        self.report.diags.push(Diag {
            code,
            index: self.index,
            tag,
            message,
        });
    }

    /// Records an externally produced diagnostic (e.g. from the SSPM mode
    /// checker in `via-core`) at the current stream position.
    pub fn push_external(&mut self, mut diag: Diag) {
        diag.index = self.index;
        self.report.diags.push(diag);
    }

    /// Checks one instruction and returns the diagnostics it produced.
    pub fn check(&mut self, inst: &Inst) -> &[Diag] {
        let first_new = self.report.diags.len();
        let tag = inst.op.tag();

        // --- structural lints per op class ------------------------------
        match &inst.op {
            Op::Gather { addrs, elem_bytes } | Op::Scatter { addrs, elem_bytes } => {
                if addrs.is_empty() {
                    self.diag(
                        DiagCode::AddrListMismatch,
                        tag,
                        format!("{tag} has an empty address list"),
                    );
                } else if addrs.len() > self.cfg.max_vl as usize {
                    let len = addrs.len();
                    let vl = self.cfg.max_vl;
                    self.diag(
                        DiagCode::AddrListMismatch,
                        tag,
                        format!("{tag} has {len} addresses but the machine VL is {vl} lanes"),
                    );
                }
                if *elem_bytes == 0 {
                    self.diag(
                        DiagCode::DegenerateOperand,
                        tag,
                        format!("{tag} moves zero bytes per element"),
                    );
                }
            }
            Op::Load { bytes: 0, .. } | Op::Store { bytes: 0, .. } => {
                self.diag(
                    DiagCode::DegenerateOperand,
                    tag,
                    format!("{tag} accesses zero bytes"),
                );
            }
            Op::Custom {
                occupancy, latency, ..
            } => {
                if self.cfg.custom_units == 0 {
                    self.diag(
                        DiagCode::CustomWithoutUnit,
                        tag,
                        "custom (FIVU) op pushed on a core configured with zero custom units"
                            .to_string(),
                    );
                }
                if *occupancy == 0 || *latency == 0 {
                    self.diag(
                        DiagCode::DegenerateOperand,
                        tag,
                        format!("custom op with occupancy {occupancy} and latency {latency}"),
                    );
                }
            }
            _ => {}
        }

        // --- register checks --------------------------------------------
        let srcs = inst.srcs.as_slice();
        for (pos, &r) in srcs.iter().enumerate() {
            if let Some(declared) = self.cfg.declared_regs {
                if r >= declared {
                    self.diag(
                        DiagCode::RegisterOutOfRange,
                        tag,
                        format!("source register r{r} is outside the declared range 0..{declared}"),
                    );
                    continue;
                }
            }
            if self.defined_at(r) == UNDEFINED {
                if inst.dst == Some(r) {
                    self.diag(
                        DiagCode::SelfDependency,
                        tag,
                        format!(
                            "source register r{r} is only defined by this instruction itself \
                             (dependency cycle)"
                        ),
                    );
                } else {
                    self.diag(
                        DiagCode::UndefinedRegister,
                        tag,
                        format!("source register r{r} has no defining instruction"),
                    );
                }
            }
            if srcs[..pos].contains(&r) {
                self.diag(
                    DiagCode::DuplicateSources,
                    tag,
                    format!("register r{r} is listed as a source more than once"),
                );
            }
        }
        if let Some(declared) = self.cfg.declared_regs {
            if let Some(dst) = inst.dst {
                if dst >= declared {
                    self.diag(
                        DiagCode::RegisterOutOfRange,
                        tag,
                        format!(
                            "destination register r{dst} is outside the declared range \
                             0..{declared}"
                        ),
                    );
                }
            }
        }

        // --- store-buffer ordering (VIA008) ------------------------------
        // Gathers cannot forward from pending scattered stores. A gather
        // whose lines overlap a recent scatter must show ordering evidence:
        // a source defined at-or-after the scatter (e.g. a drain delay or a
        // chained value), a source shared with the scatter, or an
        // intervening fence (which drops all pending scatters).
        if let Op::Gather { addrs, .. } = &inst.op {
            self.line_scratch.clear();
            for &a in addrs.as_slice() {
                let line = a / 64;
                if !self.line_scratch.contains(&line) {
                    self.line_scratch.push(line);
                }
            }
            let ordered_after = |v: &Verifier, scatter: &PendingScatter| {
                srcs.iter().any(|&r| {
                    let def = v.defined_at(r);
                    def != UNDEFINED && def > scatter.index
                }) || srcs.iter().any(|&r| scatter.srcs.contains(&r))
            };
            let conflict = self
                .pending_scatters
                .iter()
                .rev()
                .find(|s| {
                    s.lines.iter().any(|l| self.line_scratch.contains(l)) && !ordered_after(self, s)
                })
                .map(|s| s.index);
            if let Some(scatter_index) = conflict {
                self.diag(
                    DiagCode::UnorderedGatherAfterScatter,
                    tag,
                    format!(
                        "gather reads a cache line scattered at inst #{scatter_index} with no \
                         ordering dependence (gathers cannot forward from the store buffer)"
                    ),
                );
            }
        }

        // --- definition + hazard bookkeeping -----------------------------
        if let Some(dst) = inst.dst {
            let idx = dst as usize;
            if idx >= self.def_index.len() {
                self.def_index.resize(idx + 1, UNDEFINED);
            }
            self.def_index[idx] = self.index + 1;
        }
        match &inst.op {
            Op::Scatter { addrs, .. } => {
                self.line_scratch.clear();
                for &a in addrs.as_slice() {
                    let line = a / 64;
                    if !self.line_scratch.contains(&line) {
                        self.line_scratch.push(line);
                    }
                }
                if self.pending_scatters.len() >= self.cfg.scatter_window.max(1) {
                    self.pending_scatters.remove(0);
                }
                self.pending_scatters.push(PendingScatter {
                    index: self.index,
                    lines: self.line_scratch.clone(),
                    srcs: srcs.to_vec(),
                });
            }
            Op::Fence => self.pending_scatters.clear(),
            _ => {}
        }

        self.index += 1;
        self.report.instructions += 1;
        &self.report.diags[first_new..]
    }
}

/// A recorded instruction stream for offline verification (the negative
/// tests hand-build and corrupt these).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    declared_regs: Option<Reg>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declares the register count (enables the VIA002 range check).
    pub fn with_declared_regs(mut self, regs: Reg) -> Self {
        self.declared_regs = Some(regs);
        self
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// The instructions in push order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instructions (for corruption in tests).
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl FromIterator<Inst> for Program {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> Self {
        Program {
            insts: iter.into_iter().collect(),
            declared_regs: None,
        }
    }
}

/// Verifies a recorded program in one pass. The program's declared register
/// count (if any) overrides the configuration's.
///
/// # Examples
///
/// A stream whose every source register has a producer is clean; dropping
/// a producer makes the use an undefined-register violation (VIA001):
///
/// ```
/// use via_sim::prog::{AluKind, Inst};
/// use via_sim::verify::{verify_program, DiagCode, Program, VerifyConfig};
///
/// let cfg = VerifyConfig::default();
///
/// // r0 <- load, r1 <- load, r2 <- r0 + r1: every source is defined.
/// let good: Program = [
///     Inst::load(0x1000, 8, 0),
///     Inst::load(0x1008, 8, 1),
///     Inst::scalar(AluKind::FpAdd, &[0, 1], Some(2)),
/// ]
/// .into_iter()
/// .collect();
/// assert!(verify_program(&good, &cfg).is_clean());
///
/// // The same stream without the second load: r1 has no producer.
/// let bad: Program = [
///     Inst::load(0x1000, 8, 0),
///     Inst::scalar(AluKind::FpAdd, &[0, 1], Some(2)),
/// ]
/// .into_iter()
/// .collect();
/// let report = verify_program(&bad, &cfg);
/// assert_eq!(report.error_count(), 1);
/// assert_eq!(report.diags[0].code, DiagCode::UndefinedRegister);
/// ```
pub fn verify_program(prog: &Program, cfg: &VerifyConfig) -> Report {
    let mut cfg = cfg.clone();
    if prog.declared_regs.is_some() {
        cfg.declared_regs = prog.declared_regs;
    }
    let mut verifier = Verifier::new(cfg);
    for inst in prog.insts() {
        verifier.check(inst);
    }
    verifier.take_report()
}

// ---- thread-local capture -------------------------------------------------
//
// Kernel functions construct their engines internally, so callers that want
// release-build verification (the `verify_programs` binary, the kernels'
// unit tests) cannot attach a verifier by hand. Instead they enable
// *capture* on their thread: every engine constructed while capture is on
// attaches a verifier, and flushes its report here on `finish`/`reset`.
// Thread-local (not global) so concurrently running tests cannot steal each
// other's reports.

thread_local! {
    static CAPTURE: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Vec<Report>> = const { RefCell::new(Vec::new()) };
}

/// Whether stream capture is enabled on this thread.
pub fn capture_enabled() -> bool {
    CAPTURE.with(|c| c.get())
}

/// Enables verification capture on this thread and returns a guard that
/// disables it again when dropped. Engines constructed while the guard
/// lives attach a [`Verifier`] (even in release builds) and deposit their
/// [`Report`]s for [`drain_captured`].
pub fn capture_guard() -> CaptureGuard {
    CAPTURE.with(|c| c.set(true));
    CaptureGuard(())
}

/// RAII guard from [`capture_guard`]; disables capture when dropped.
#[derive(Debug)]
pub struct CaptureGuard(());

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        CAPTURE.with(|c| c.set(false));
    }
}

/// Deposits a finished report into this thread's capture sink (called by
/// the engine; callable directly for custom harnesses).
pub fn submit_report(report: Report) {
    SINK.with(|s| s.borrow_mut().push(report));
}

/// Drains every report captured on this thread so far.
pub fn drain_captured() -> Vec<Report> {
    SINK.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::AluKind;

    fn cfg() -> VerifyConfig {
        VerifyConfig::default()
    }

    fn codes(report: &Report) -> Vec<DiagCode> {
        report.diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_stream_produces_no_diags() {
        let mut prog = Program::new();
        prog.push(Inst::load(0x100, 8, 0));
        prog.push(Inst::scalar(AluKind::FpAdd, &[0], Some(1)));
        prog.push(Inst::store(0x200, 8, &[1]));
        let report = verify_program(&prog, &cfg());
        assert!(report.is_clean());
        assert!(report.diags.is_empty());
        assert_eq!(report.instructions, 3);
    }

    #[test]
    fn undefined_source_is_via001() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[7], Some(0)));
        let report = verify_program(&prog, &cfg());
        assert_eq!(codes(&report), vec![DiagCode::UndefinedRegister]);
        assert_eq!(report.error_count(), 1);
        assert!(report.diags[0].render().contains("error[VIA001]"));
    }

    #[test]
    fn redefinition_and_read_of_old_value_are_legal() {
        // SSA-ish renaming: `r0 = f(r0)` reads the previous definition.
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scalar(AluKind::Int, &[0], Some(0)));
        assert!(verify_program(&prog, &cfg()).is_clean());
    }

    #[test]
    fn self_dependency_at_first_definition_is_via003() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[0], Some(0)));
        let report = verify_program(&prog, &cfg());
        assert_eq!(codes(&report), vec![DiagCode::SelfDependency]);
    }

    #[test]
    fn declared_range_is_enforced_as_via002() {
        let mut prog = Program::new().with_declared_regs(4);
        prog.push(Inst::scalar(AluKind::Int, &[], Some(3)));
        prog.push(Inst::scalar(AluKind::Int, &[9], Some(2)));
        prog.push(Inst::scalar(AluKind::Int, &[], Some(5)));
        let report = verify_program(&prog, &cfg());
        assert_eq!(
            codes(&report),
            vec![DiagCode::RegisterOutOfRange, DiagCode::RegisterOutOfRange]
        );
    }

    #[test]
    fn oversized_and_empty_addr_lists_are_via004() {
        let mut prog = Program::new();
        let wide: Vec<u64> = (0..6).map(|i| i * 8).collect(); // VL is 4
        prog.push(Inst::gather(wide, 8, &[], 0));
        prog.push(Inst::scatter(Vec::<u64>::new(), 8, &[0]));
        let report = verify_program(&prog, &cfg());
        assert_eq!(
            codes(&report),
            vec![DiagCode::AddrListMismatch, DiagCode::AddrListMismatch]
        );
    }

    #[test]
    fn duplicate_sources_warn_via005() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scalar(AluKind::Int, &[0, 0], Some(1)));
        let report = verify_program(&prog, &cfg());
        assert_eq!(codes(&report), vec![DiagCode::DuplicateSources]);
        assert!(report.is_clean(), "VIA005 is a warning, not a violation");
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn custom_without_unit_is_via006() {
        let mut prog = Program::new();
        prog.push(Inst::custom(1, 3, true, &[], Some(0)));
        let report = verify_program(&prog, &cfg()); // default core: no FIVU
        assert_eq!(codes(&report), vec![DiagCode::CustomWithoutUnit]);

        let mut with_unit = cfg();
        with_unit.custom_units = 1;
        assert!(verify_program(&prog, &with_unit).is_clean());
    }

    #[test]
    fn zero_byte_and_zero_cost_ops_warn_via007() {
        let mut with_unit = cfg();
        with_unit.custom_units = 1;
        let mut prog = Program::new();
        prog.push(Inst::load(0x100, 0, 0));
        prog.push(Inst::custom(0, 0, false, &[], None));
        let report = verify_program(&prog, &with_unit);
        assert_eq!(
            codes(&report),
            vec![DiagCode::DegenerateOperand, DiagCode::DegenerateOperand]
        );
        assert!(report.is_clean());
    }

    #[test]
    fn unordered_gather_after_scatter_is_via008() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100, 0x140], 8, &[0]));
        // Same lines, no ordering source at all.
        prog.push(Inst::gather(vec![0x108], 8, &[], 1));
        let report = verify_program(&prog, &cfg());
        assert_eq!(codes(&report), vec![DiagCode::UnorderedGatherAfterScatter]);
        assert_eq!(report.diags[0].index, 2);
    }

    #[test]
    fn gather_ordered_by_scatter_source_passes() {
        // The csb_software_vec pattern: the gather depends on the scattered
        // value register.
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100], 8, &[0]));
        prog.push(Inst::gather(vec![0x100], 8, &[0], 1));
        assert!(verify_program(&prog, &cfg()).is_clean());
    }

    #[test]
    fn gather_ordered_by_later_definition_passes() {
        // The sell pattern: the gather depends on a drain delay (or any
        // register produced after the scatter).
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100], 8, &[0]));
        prog.push(Inst::delay(20, &[0], 1));
        prog.push(Inst::gather(vec![0x100], 8, &[1], 2));
        assert!(verify_program(&prog, &cfg()).is_clean());
    }

    #[test]
    fn fence_clears_pending_scatters() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100], 8, &[0]));
        prog.push(Inst::fence());
        prog.push(Inst::gather(vec![0x100], 8, &[], 1));
        assert!(verify_program(&prog, &cfg()).is_clean());
    }

    #[test]
    fn disjoint_lines_do_not_conflict() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100], 8, &[0]));
        prog.push(Inst::gather(vec![0x1000], 8, &[], 1));
        assert!(verify_program(&prog, &cfg()).is_clean());
    }

    #[test]
    fn scatter_window_bounds_tracking() {
        let mut cfg = cfg();
        cfg.scatter_window = 2;
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[], Some(0)));
        prog.push(Inst::scatter(vec![0x100], 8, &[0])); // evicted
        prog.push(Inst::scatter(vec![0x200], 8, &[0]));
        prog.push(Inst::scatter(vec![0x300], 8, &[0]));
        prog.push(Inst::gather(vec![0x100], 8, &[], 1)); // vs evicted: clean
        let report = verify_program(&prog, &cfg);
        assert!(report.is_clean());
    }

    #[test]
    fn report_renders_summary_and_codes() {
        let mut prog = Program::new();
        prog.push(Inst::scalar(AluKind::Int, &[3], Some(0)));
        let report = verify_program(&prog, &cfg());
        let text = report.render();
        assert!(text.contains("error[VIA001]"));
        assert!(text.contains("--> inst #0 (scalar)"));
        assert!(text.contains("1 errors, 0 warnings"));
        assert_eq!(report.with_code(DiagCode::UndefinedRegister).len(), 1);
    }

    #[test]
    fn streaming_verifier_reset_clears_state() {
        let mut v = Verifier::new(cfg());
        v.check(&Inst::scalar(AluKind::Int, &[], Some(0)));
        v.check(&Inst::scalar(AluKind::Int, &[0], Some(1)));
        assert!(v.report().is_clean());
        v.reset();
        // After reset r0 is undefined again.
        let diags = v.check(&Inst::scalar(AluKind::Int, &[0], Some(1)));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::UndefinedRegister);
    }

    #[test]
    fn external_diags_are_stamped_with_the_stream_index() {
        let mut v = Verifier::new(cfg());
        v.check(&Inst::scalar(AluKind::Int, &[], Some(0)));
        v.push_external(Diag {
            code: DiagCode::SspmModeConflict,
            index: 999, // overwritten
            tag: "custom",
            message: "test".to_string(),
        });
        assert_eq!(v.report().diags[0].index, 1);
        assert_eq!(v.report().error_count(), 1);
    }

    #[test]
    fn capture_guard_round_trips_reports() {
        assert!(!capture_enabled());
        {
            let _guard = capture_guard();
            assert!(capture_enabled());
            submit_report(Report {
                instructions: 5,
                ..Report::default()
            });
        }
        assert!(!capture_enabled());
        let reports = drain_captured();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].instructions, 5);
        assert!(drain_captured().is_empty());
    }
}

//! Tests for the `via-analyze` static-analysis subsystem: pass-level
//! findings with their oracles, the CAM/marker pass, reuse profiles, the
//! analysis memo, the engine attachment, and — most importantly — the
//! randomized cross-validation that the static cycle lower bound never
//! exceeds the simulated cycle count.

use via_rng::StdRng;
use via_sim::analyze::{self, AnalyzeConfig};
use via_sim::prog::{AluKind, Inst};
use via_sim::verify::{DiagCode, Program, VerifyConfig};
use via_sim::{CompiledStream, CoreConfig, Engine, MemConfig};

fn compile(insts: Vec<Inst>, core: &CoreConfig) -> CompiledStream {
    let prog: Program = insts.into_iter().collect();
    CompiledStream::compile(prog, &VerifyConfig::from_core(core))
}

fn simulate(insts: &[Inst], core: &CoreConfig) -> u64 {
    let mut e = Engine::new(core.clone(), MemConfig::default());
    for inst in insts {
        e.push(inst.clone());
    }
    e.finish().cycles
}

/// A well-formed random stream: every source register is defined, no
/// self-dependences, occasional register reuse so dead writes occur.
fn random_stream(rng: &mut StdRng, len: usize, with_custom: bool) -> Vec<Inst> {
    let mut insts = Vec::new();
    let mut defined: Vec<u32> = Vec::new();
    for r in 0..4u32 {
        insts.push(Inst::scalar(AluKind::Int, &[], Some(r)));
        defined.push(r);
    }
    let mut next_reg = 4u32;
    while insts.len() < len {
        let a = defined[rng.below(defined.len() as u64) as usize];
        let b = defined[rng.below(defined.len() as u64) as usize];
        // Mostly fresh destinations; sometimes redefine an old register
        // (never a source of the same instruction: VIA003).
        let reuse_dst = rng.below(4) == 0;
        let mut dst = || -> u32 {
            if reuse_dst {
                if let Some(&r) = defined.iter().find(|&&r| r != a && r != b) {
                    return r;
                }
            }
            let r = next_reg;
            next_reg += 1;
            defined.push(r);
            r
        };
        let inst = match rng.below(if with_custom { 12 } else { 11 }) {
            0 => Inst::scalar(AluKind::Int, &[a], Some(dst())),
            1 => Inst::scalar(AluKind::FpFma, &[a, b], Some(dst())),
            2 => Inst::vec(via_sim::VecOpKind::Fma, &[a, b], Some(dst())),
            3 => Inst::load_dep(rng.below(1 << 14) * 4, 8, &[a], dst()),
            4 => Inst::store(rng.below(1 << 14) * 4, 8, &[a]),
            5 => {
                let addrs: Vec<u64> = (0..4).map(|_| rng.below(1 << 12) * 8).collect();
                Inst::gather(addrs, 8, &[a], dst())
            }
            6 => {
                let addrs: Vec<u64> = (0..4).map(|_| rng.below(1 << 12) * 8).collect();
                Inst::scatter(addrs, 8, &[a])
            }
            7 => Inst::branch(rng.below(2) == 0, rng.below(16) as u32, &[a]),
            8 => Inst::delay(rng.below(8) as u32, &[a], dst()),
            9 => Inst::fence(),
            10 => Inst::vec(via_sim::VecOpKind::Reduce, &[a], Some(dst())),
            _ => Inst::custom(
                rng.below(4) as u32 + 1,
                rng.below(6) as u32 + 1,
                rng.below(2) == 0,
                &[a],
                Some(dst()),
            ),
        };
        insts.push(inst);
    }
    insts
}

/// The acceptance property, randomized: for arbitrary well-formed streams
/// on both the baseline and the VIA core, the static bound never exceeds
/// the simulated cycle count, and every finding survives its brute-force
/// oracle (zero false positives).
#[test]
fn random_streams_bound_holds_and_findings_validate() {
    // Random gathers may legitimately trip the dynamic VIA008 *error*
    // (which panics debug runs); capture mode collects reports instead,
    // and keeps the overlapping traffic that exercises the alias oracle.
    let _guard = via_sim::verify::capture_guard();
    via_rng::cases(30, 0xA11A_5E7, |i, rng| {
        let with_custom = i % 2 == 1;
        let core = if with_custom {
            CoreConfig::default().with_custom_unit()
        } else {
            CoreConfig::default()
        };
        let insts = random_stream(rng, 250, with_custom);
        let cycles = simulate(&insts, &core);
        let stream = compile(insts, &core);
        let cfg = AnalyzeConfig::from_machine(&core, &MemConfig::default());
        let report = analyze::analyze(&stream, &cfg);
        assert!(
            report.bound.lower_cycles <= cycles,
            "case {i}: bound {} > simulated {} (terms: {:?})",
            report.bound.lower_cycles,
            cycles,
            report.bound
        );
        assert!(report.bound.lower_cycles > 0, "case {i}: vacuous bound");
        analyze::validate(&stream, &report)
            .unwrap_or_else(|e| panic!("case {i}: false positive: {e}"));
    });
    let _ = via_sim::verify::drain_captured();
}

#[test]
fn dead_write_detected_and_renders_as_analysis() {
    let core = CoreConfig::default();
    let insts = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)), // dead: redefined at #2
        Inst::scalar(AluKind::Int, &[], Some(1)),
        Inst::scalar(AluKind::Int, &[1], Some(0)),
        Inst::store(0x100, 8, &[0]),
    ];
    let stream = compile(insts, &core);
    let report = analyze::analyze(&stream, &AnalyzeConfig::default());
    assert_eq!(report.dead_writes, 1);
    assert_eq!(report.dead_write_sites[0].index, 0);
    assert_eq!(report.dead_write_sites[0].overwritten_at, 2);
    let diag = &report.diags[0];
    assert_eq!(diag.code, DiagCode::DeadRegisterWrite);
    assert!(
        diag.render().starts_with("analysis[VIA101]"),
        "{}",
        diag.render()
    );
    analyze::validate(&stream, &report).unwrap();
}

#[test]
fn read_register_is_not_a_dead_write() {
    let core = CoreConfig::default();
    let insts = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::store(0x100, 8, &[0]), // read before the redefinition
        Inst::scalar(AluKind::Int, &[], Some(0)),
    ];
    let report = analyze::analyze(&compile(insts, &core), &AnalyzeConfig::default());
    assert_eq!(report.dead_writes, 0);
    // The final definition is unread at stream end: informational only.
    assert_eq!(report.unread_at_end, 1);
}

#[test]
fn dead_store_is_byte_exact() {
    let core = CoreConfig::default();
    let fully_dead = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::store(0x100, 8, &[0]), // dead: fully overwritten at #2
        Inst::store(0x100, 8, &[0]),
    ];
    let stream = compile(fully_dead, &core);
    let report = analyze::analyze(&stream, &AnalyzeConfig::default());
    assert_eq!(report.dead_stores, 1);
    assert_eq!(report.dead_store_bytes, 8);
    assert_eq!(report.dead_store_sites[0].index, 1);
    assert_eq!(report.diags[0].code, DiagCode::DeadStore);
    analyze::validate(&stream, &report).unwrap();

    // One byte survives: not dead.
    let partial = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::store(0x100, 8, &[0]),
        Inst::store(0x101, 7, &[0]),
    ];
    let report = analyze::analyze(&compile(partial, &core), &AnalyzeConfig::default());
    assert_eq!(report.dead_stores, 0);

    // A gather observes one byte before the overwrite: not dead.
    let observed = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::store(0x100, 8, &[0]),
        Inst::gather(vec![0x104], 4, &[0], 1),
        Inst::store(0x100, 8, &[0]),
    ];
    let report = analyze::analyze(&compile(observed, &core), &AnalyzeConfig::default());
    assert_eq!(report.dead_stores, 0);

    // A scatter can be the killer (but is never itself a candidate).
    let scatter_kill = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::store(0x200, 4, &[0]),
        Inst::scatter(vec![0x200], 4, &[0]),
    ];
    let report = analyze::analyze(&compile(scatter_kill, &core), &AnalyzeConfig::default());
    assert_eq!(report.dead_stores, 1);
}

#[test]
fn must_alias_conflict_and_ordering_evidence() {
    let core = CoreConfig::default();
    // Gather overlaps the scatter byte-exactly, no ordering evidence.
    let conflict = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::scalar(AluKind::Int, &[], Some(1)),
        Inst::scatter(vec![0x100, 0x200], 8, &[0]),
        Inst::gather(vec![0x200, 0x300], 8, &[1], 2),
    ];
    let stream = compile(conflict, &core);
    let report = analyze::analyze(&stream, &AnalyzeConfig::default());
    assert_eq!(report.alias_conflicts, 1);
    assert_eq!(report.alias_sites[0].gather, 3);
    assert_eq!(report.alias_sites[0].scatter, 2);
    assert_eq!(report.diags[0].code, DiagCode::MustAliasConflict);
    analyze::validate(&stream, &report).unwrap();

    // Same lines but disjoint bytes: VIA008 would warn, VIA103 must not.
    let line_share_only = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::scalar(AluKind::Int, &[], Some(1)),
        Inst::scatter(vec![0x200], 8, &[0]),
        Inst::gather(vec![0x208], 8, &[1], 2),
    ];
    let report = analyze::analyze(&compile(line_share_only, &core), &AnalyzeConfig::default());
    assert_eq!(report.alias_conflicts, 0);

    // A fence orders them.
    let fenced = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::scalar(AluKind::Int, &[], Some(1)),
        Inst::scatter(vec![0x200], 8, &[0]),
        Inst::fence(),
        Inst::gather(vec![0x200], 8, &[1], 2),
    ];
    let report = analyze::analyze(&compile(fenced, &core), &AnalyzeConfig::default());
    assert_eq!(report.alias_conflicts, 0);

    // Shared source register is ordering evidence.
    let shared_src = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::scatter(vec![0x200], 8, &[0]),
        Inst::gather(vec![0x200], 8, &[0], 1),
    ];
    let report = analyze::analyze(&compile(shared_src, &core), &AnalyzeConfig::default());
    assert_eq!(report.alias_conflicts, 0);

    // A source defined after the scatter is ordering evidence.
    let later_def = vec![
        Inst::scalar(AluKind::Int, &[], Some(0)),
        Inst::scatter(vec![0x200], 8, &[0]),
        Inst::scalar(AluKind::Int, &[0], Some(1)),
        Inst::gather(vec![0x200], 8, &[1], 2),
    ];
    let report = analyze::analyze(&compile(later_def, &core), &AnalyzeConfig::default());
    assert_eq!(report.alias_conflicts, 0);
}

#[test]
fn reuse_profile_counts_exact_stack_distances() {
    let core = CoreConfig::default();
    // Line-granular access string: A B A (distance 1), then B (distance 1).
    let insts = vec![
        Inst::load(0x000, 8, 0),
        Inst::load(0x040, 8, 1),
        Inst::load(0x008, 8, 2), // line A again: 1 distinct line between
        Inst::load(0x048, 8, 3), // line B again: distance 1
    ];
    let report = analyze::analyze(&compile(insts, &core), &AnalyzeConfig::default());
    let whole = report.whole_stream();
    assert_eq!(whole.name, analyze::WHOLE_STREAM);
    assert_eq!(whole.accesses, 4);
    assert_eq!(whole.cold, 2);
    assert_eq!(whole.distinct_lines, 2);
    // Two reuses at distance 1 → bucket floor(log2(2)) = 1.
    assert_eq!(whole.hist[1], 2);
    assert_eq!(whole.hits_within(4), 2);
    assert_eq!(whole.hits_within(1), 0);
}

#[test]
fn reuse_attributes_to_regions_from_stream_events() {
    let core = CoreConfig::default();
    let mut e = Engine::new(core.clone(), MemConfig::default());
    e.enable_recording();
    e.region("hot");
    e.push(Inst::load(0x000, 8, 0));
    e.push(Inst::load(0x000, 8, 1));
    e.region_end();
    e.push(Inst::load(0x040, 8, 2));
    let stream = e.take_compiled().unwrap();
    let _ = e.finish();
    let report = analyze::analyze(&stream, &AnalyzeConfig::default());
    assert_eq!(report.whole_stream().accesses, 3);
    let hot = report.regions.iter().find(|r| r.name == "hot").unwrap();
    assert_eq!(hot.accesses, 2);
    assert_eq!(hot.distinct_lines, 1);
    assert_eq!(hot.hist[0], 1); // immediate reuse, distance 0
}

#[test]
fn cam_occupancy_bound_from_markers() {
    let core = CoreConfig::default().with_custom_unit();
    let mut e = Engine::new(core.clone(), MemConfig::default());
    e.enable_recording();
    e.trace_marker("sspm mode: cam");
    for _ in 0..3 {
        let r = e.fresh_reg();
        e.push(Inst::custom(1, 2, false, &[], Some(r)));
    }
    e.trace_marker("sspm mode: cleared");
    e.trace_marker("sspm mode: cam");
    let r = e.fresh_reg();
    e.push(Inst::custom(1, 2, false, &[], Some(r)));
    let stream = e.take_compiled().unwrap();
    let _ = e.finish();

    // vl = 4: worst segment proves at most 12 live entries.
    let mem = MemConfig::default();
    let roomy = AnalyzeConfig::from_machine(&core, &mem).with_cam_entries(16);
    let report = analyze::analyze(&stream, &roomy);
    assert_eq!(report.cam.cam_intervals, 2);
    assert_eq!(report.cam.cam_ops, 4);
    assert_eq!(report.cam.insert_upper, 12);
    assert_eq!(report.cam.proven_no_overflow, Some(true));
    assert!(report.diags.is_empty());

    let tight = AnalyzeConfig::from_machine(&core, &mem).with_cam_entries(8);
    let report = analyze::analyze(&stream, &tight);
    assert_eq!(report.cam.proven_no_overflow, Some(false));
    assert_eq!(report.diags.len(), 1);
    assert_eq!(report.diags[0].code, DiagCode::CamOccupancyBound);
    // The third op's insertions (12 > 8) are the first past capacity.
    assert_eq!(report.diags[0].index, 2);
}

#[test]
fn analysis_cache_memoizes_by_stream_and_config() {
    let core = CoreConfig::default();
    let insts = vec![Inst::scalar(AluKind::Int, &[], Some(0))];
    let stream = compile(insts, &core);
    let cache = via_sim::AnalysisCache::new();
    let cfg = AnalyzeConfig::default();
    let a = cache.get_or_analyze(&stream, &cfg);
    let b = cache.get_or_analyze(&stream, &cfg);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
    // A different analyzer config is a different memo entry.
    let other = AnalyzeConfig::default().with_cam_entries(64);
    let c = cache.get_or_analyze(&stream, &other);
    assert!(!std::sync::Arc::ptr_eq(&a, &c));
    assert_eq!(cache.len(), 2);
}

/// Satellite regression: a reused engine must not leak a stale
/// `AnalysisReport` across `reset()`.
#[test]
fn engine_reset_clears_attached_analysis_report() {
    let core = CoreConfig::default();
    let insts = vec![Inst::scalar(AluKind::Int, &[], Some(0))];
    let stream = compile(insts, &core);
    let mut e = Engine::new(core, MemConfig::default());
    let report = e.analyze_compiled(&stream);
    assert_eq!(report.stream_hash, stream.stream_hash());
    assert!(e.analysis_report().is_some());
    e.reset();
    assert!(
        e.analysis_report().is_none(),
        "reset leaked a stale AnalysisReport"
    );
}

/// The report memoizes alongside the cycle memo: identical streams hash
/// identically, so the analysis keys match the sweep's stream keys.
#[test]
fn analysis_report_is_keyed_by_content() {
    let core = CoreConfig::default();
    let a = compile(vec![Inst::scalar(AluKind::Int, &[], Some(0))], &core);
    let b = compile(vec![Inst::scalar(AluKind::Int, &[], Some(0))], &core);
    let cfg = AnalyzeConfig::default();
    assert_eq!(
        analyze::analyze(&a, &cfg).stream_hash,
        analyze::analyze(&b, &cfg).stream_hash
    );
}

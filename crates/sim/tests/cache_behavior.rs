//! Behavioural tests of the memory hierarchy through the engine: working
//! sets, conflict misses, writeback pressure, and the interactions the
//! kernels depend on.

use via_sim::prog::AluKind;
use via_sim::{CacheConfig, CoreConfig, Engine, MemConfig, RunStats};

fn run_accesses(addrs: &[u64], mem: MemConfig) -> RunStats {
    let mut e = Engine::new(CoreConfig::default(), mem);
    for &a in addrs {
        e.load(a, 8);
    }
    e.finish()
}

fn stream(base: u64, lines: usize) -> Vec<u64> {
    (0..lines as u64).map(|i| base + i * 64).collect()
}

#[test]
fn l1_resident_working_set_hits_after_warmup() {
    // 16 KB working set fits the 32 KB L1.
    let addrs: Vec<u64> = stream(0x10000, 256)
        .into_iter()
        .chain(stream(0x10000, 256))
        .collect();
    let stats = run_accesses(&addrs, MemConfig::default());
    assert_eq!(stats.l1.misses, 256, "first pass misses each line once");
    assert_eq!(stats.l1.hits, 256, "second pass hits everything");
}

#[test]
fn l2_resident_working_set_spills_l1_but_not_l2() {
    // 128 KB working set: spills the 32 KB L1, fits the 256 KB L2.
    let pass = stream(0x100000, 2048);
    let addrs: Vec<u64> = pass.iter().chain(pass.iter()).copied().collect();
    let stats = run_accesses(&addrs, MemConfig::default());
    // Second pass misses L1 (evicted) but hits L2.
    assert!(stats.l1.misses >= 4000, "both passes miss L1");
    assert_eq!(stats.l3.accesses(), 2048, "only the first pass reaches L3");
    assert_eq!(stats.dram_read_bytes, 2048 * 64);
}

#[test]
fn conflict_misses_in_a_single_set() {
    // 16 addresses mapping to one L1 set (stride = sets * line = 4 KB)
    // with 8-way associativity: round-robin over 16 > 8 ways thrashes.
    let addrs: Vec<u64> = (0..16u64)
        .map(|i| 0x200000 + i * 4096)
        .cycle()
        .take(64)
        .collect();
    let stats = run_accesses(&addrs, MemConfig::default());
    // LRU + 16 distinct lines in an 8-way set: every access misses L1.
    assert_eq!(stats.l1.hits, 0, "true-LRU thrashing should never hit");
    // But L2 (8-way, 512 sets, different indexing) holds them after fill.
    assert!(stats.l2.hits > 0);
}

#[test]
fn write_streams_produce_writeback_traffic() {
    // Write (dirty) far more lines than the whole hierarchy holds; the
    // evicted dirty lines must reach DRAM as writes.
    let mem = MemConfig::default();
    let total_lines = mem.l3.size_bytes / 64 * 2;
    let mut e = Engine::new(CoreConfig::default(), mem);
    let junk = e.scalar_op(AluKind::Int, &[]);
    for i in 0..total_lines as u64 {
        e.store(0x1000000 + i * 64, 8, &[junk]);
    }
    let stats = e.finish();
    assert!(
        stats.dram_write_bytes > 0,
        "dirty evictions must write back to DRAM"
    );
    assert!(stats.l1.writebacks > 0);
}

#[test]
fn dram_bandwidth_bounds_streaming_rate() {
    // Cold-stream 4 MB: the run can't finish faster than bytes/bandwidth.
    let mem = MemConfig::default();
    let lines = 65536usize; // 4 MB
    let stats = run_accesses(&stream(0x2000000, lines), mem.clone());
    let min_cycles = (lines as f64 * 64.0 / mem.dram_bytes_per_cycle) as u64;
    assert!(
        stats.cycles >= min_cycles,
        "stream finished in {} cycles, below the bandwidth floor {}",
        stats.cycles,
        min_cycles
    );
    // And it should be within ~2x of that floor (the engine overlaps
    // fetch/misses well for independent loads).
    assert!(
        stats.cycles < min_cycles * 2,
        "stream at {} cycles is far off the bandwidth floor {}",
        stats.cycles,
        min_cycles
    );
}

#[test]
fn smaller_caches_miss_more() {
    let small = MemConfig {
        l1: CacheConfig {
            size_bytes: 8 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        },
        ..MemConfig::default()
    };
    let pass = stream(0x300000, 256); // 16 KB
    let addrs: Vec<u64> = pass.iter().chain(pass.iter()).copied().collect();
    let big = run_accesses(&addrs, MemConfig::default());
    let small = run_accesses(&addrs, small);
    assert!(small.l1.misses > big.l1.misses);
}

#[test]
fn dependent_pointer_chase_pays_serial_latency() {
    // A chain of dependent loads over cold lines: each waits for the
    // previous, so total time ≈ chain length × DRAM latency.
    let mem = MemConfig::default();
    let mut e = Engine::new(CoreConfig::default(), mem.clone());
    let mut dep = e.load(0x4000000, 8);
    let n = 32u64;
    for i in 1..n {
        dep = e.load_dep(0x4000000 + i * 4096, 8, &[dep]);
    }
    let stats = e.finish();
    let serial_floor = (n - 1) * mem.dram_latency as u64;
    assert!(
        stats.cycles >= serial_floor,
        "pointer chase at {} cycles, below serial floor {}",
        stats.cycles,
        serial_floor
    );
}

#[test]
fn independent_misses_overlap() {
    // The same 32 cold lines accessed independently complete far faster
    // than the dependent chase.
    let mem = MemConfig::default();
    let addrs: Vec<u64> = (0..32u64).map(|i| 0x5000000 + i * 4096).collect();
    let stats = run_accesses(&addrs, mem.clone());
    let serial = 32 * mem.dram_latency as u64;
    assert!(
        stats.cycles < serial / 2,
        "independent misses at {} cycles should overlap well below {}",
        stats.cycles,
        serial
    );
}

#[test]
fn scalar_compute_between_misses_is_free() {
    // Interleaving ALU work with independent misses should not lengthen
    // the run meaningfully (latency hiding).
    let mem = MemConfig::default();
    let mut plain = Engine::new(CoreConfig::default(), mem.clone());
    for i in 0..64u64 {
        plain.load(0x6000000 + i * 4096, 8);
    }
    let plain = plain.finish();

    let mut mixed = Engine::new(CoreConfig::default(), mem);
    for i in 0..64u64 {
        mixed.load(0x6000000 + i * 4096, 8);
        for _ in 0..3 {
            mixed.scalar_op(AluKind::Int, &[]);
        }
    }
    let mixed = mixed.finish();
    assert!(
        (mixed.cycles as f64) < plain.cycles as f64 * 1.3,
        "hidden ALU work blew up the runtime: {} vs {}",
        mixed.cycles,
        plain.cycles
    );
}

//! Keeps the README diagnostic-code table in lock-step with the code:
//! every `DiagCode` must appear in the table with its exact severity and
//! summary, and the table must not document codes that no longer exist.

use via_sim::verify::{DiagCode, Severity};

fn severity_word(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Analysis => "analysis",
    }
}

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    std::fs::read_to_string(path).expect("README.md at the workspace root")
}

#[test]
fn readme_table_documents_every_code_verbatim() {
    let readme = readme();
    for code in DiagCode::ALL {
        let row = format!(
            "| {} | {} | {} |",
            code.as_str(),
            severity_word(code.severity()),
            code.summary()
        );
        assert!(
            readme.contains(&row),
            "README diagnostic table is missing or stale for {}: expected \
             the exact row `{row}`",
            code.as_str()
        );
    }
}

#[test]
fn readme_table_has_no_unknown_codes() {
    let known: Vec<&str> = DiagCode::ALL.iter().map(|c| c.as_str()).collect();
    for line in readme().lines() {
        let Some(rest) = line.strip_prefix("| VIA") else {
            continue;
        };
        let code = format!("VIA{}", rest.split(' ').next().unwrap_or_default());
        assert!(
            known.contains(&code.as_str()),
            "README documents {code}, which DiagCode::ALL does not contain"
        );
    }
}

#[test]
fn all_is_exhaustive_and_sorted() {
    let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.as_str()).collect();
    let mut sorted = codes.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(codes, sorted, "DiagCode::ALL must be sorted and unique");
}

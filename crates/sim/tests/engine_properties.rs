//! Property tests over the timing engine: determinism, lower bounds, and
//! monotonicity under arbitrary instruction streams.

use proptest::prelude::*;
use via_sim::prog::{AluKind, VecOpKind};
use via_sim::{CoreConfig, Engine, MemConfig, RunStats};

/// A generatable instruction template (registers are assigned when the
/// stream is replayed so dependences stay valid).
#[derive(Debug, Clone)]
enum Template {
    Scalar { dep_on_prev: bool },
    Vec { dep_on_prev: bool },
    Load { addr: u32, bytes_log: u8 },
    Store { addr: u32 },
    GatherOf { base: u32, stride: u8 },
    Branch { taken: bool, site: u8 },
    Delay { cycles: u8 },
}

fn arb_stream() -> impl Strategy<Value = Vec<Template>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::bool::ANY.prop_map(|d| Template::Scalar { dep_on_prev: d }),
            proptest::bool::ANY.prop_map(|d| Template::Vec { dep_on_prev: d }),
            (0u32..1 << 16, 3u8..6).prop_map(|(addr, b)| Template::Load { addr, bytes_log: b }),
            (0u32..1 << 16).prop_map(|addr| Template::Store { addr }),
            (0u32..1 << 14, 1u8..32).prop_map(|(base, stride)| Template::GatherOf { base, stride }),
            (proptest::bool::ANY, 0u8..4)
                .prop_map(|(taken, site)| Template::Branch { taken, site }),
            (1u8..40).prop_map(|cycles| Template::Delay { cycles }),
        ],
        1..200,
    )
}

fn replay(stream: &[Template], core: CoreConfig, mem: MemConfig) -> RunStats {
    let mut e = Engine::new(core, mem);
    let mut prev = None;
    for t in stream {
        let deps: Vec<u32> = prev.into_iter().collect();
        let next = match t {
            Template::Scalar { dep_on_prev } => {
                let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                Some(e.scalar_op(AluKind::FpAdd, d))
            }
            Template::Vec { dep_on_prev } => {
                let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                Some(e.vec_op(VecOpKind::Fma, d))
            }
            Template::Load { addr, bytes_log } => {
                Some(e.load(0x10000 + *addr as u64, 1 << bytes_log))
            }
            Template::Store { addr } => {
                e.store(0x10000 + *addr as u64, 8, &deps);
                None
            }
            Template::GatherOf { base, stride } => {
                let addrs: Vec<u64> = (0..4u64)
                    .map(|i| 0x10000 + *base as u64 + i * *stride as u64 * 8)
                    .collect();
                Some(e.gather(addrs, 8, &deps))
            }
            Template::Branch { taken, site } => {
                e.branch(*taken, *site as u32, &deps);
                None
            }
            Template::Delay { cycles } => Some(e.delay(*cycles as u32, &deps)),
        };
        if next.is_some() {
            prev = next;
        }
    }
    e.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_is_deterministic(stream in arb_stream()) {
        let a = replay(&stream, CoreConfig::default(), MemConfig::default());
        let b = replay(&stream, CoreConfig::default(), MemConfig::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cycles_respect_commit_width(stream in arb_stream()) {
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        let floor = stats.instructions / CoreConfig::default().commit_width as u64;
        prop_assert!(
            stats.cycles >= floor,
            "cycles {} below commit floor {}",
            stats.cycles,
            floor
        );
        prop_assert_eq!(stats.instructions, stream.len() as u64);
    }

    #[test]
    fn wider_machine_is_rarely_meaningfully_slower(stream in arb_stream()) {
        // Scheduling anomalies make strict monotonicity false on real
        // out-of-order machines and in this model (earlier issue can
        // reorder cache state); allow a small tolerance.
        let narrow = CoreConfig {
            fetch_width: 2,
            commit_width: 2,
            scalar_alus: 1,
            vector_alus: 1,
            load_ports: 1,
            ..CoreConfig::default()
        };
        let slow = replay(&stream, narrow, MemConfig::default());
        let fast = replay(&stream, CoreConfig::default(), MemConfig::default());
        prop_assert!(
            fast.cycles as f64 <= slow.cycles as f64 * 1.05 + 50.0,
            "wider machine much slower: {} > {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn faster_memory_is_rarely_meaningfully_slower(stream in arb_stream()) {
        let slow_mem = MemConfig {
            dram_latency: 400,
            dram_bytes_per_cycle: 4.0,
            ..MemConfig::default()
        };
        let slow = replay(&stream, CoreConfig::default(), slow_mem);
        let fast = replay(&stream, CoreConfig::default(), MemConfig::default());
        prop_assert!(
            fast.cycles as f64 <= slow.cycles as f64 * 1.05 + 50.0,
            "faster DRAM much slower: {} > {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn mispredicts_never_exceed_branches(stream in arb_stream()) {
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        prop_assert!(stats.mispredicts <= stats.branches);
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(stream in arb_stream()) {
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        // L2 demand accesses are L1 misses (writebacks are tracked
        // separately and not counted as demand).
        prop_assert_eq!(stats.l2.accesses(), stats.l1.misses);
        prop_assert_eq!(stats.l3.accesses(), stats.l2.misses);
        // DRAM reads are L3 miss fills (one line each).
        prop_assert_eq!(stats.dram_read_bytes, stats.l3.misses * 64);
    }
}

//! Randomized property tests over the timing engine: determinism, lower
//! bounds, and monotonicity under arbitrary instruction streams. Each test
//! replays deterministic seeded streams (via-rng), so failures name a
//! reproducible case index.

use via_rng::{cases, StdRng};
use via_sim::prog::{AluKind, VecOpKind};
use via_sim::{CoreConfig, Engine, MemConfig, RunStats};

/// A generatable instruction template (registers are assigned when the
/// stream is replayed so dependences stay valid).
#[derive(Debug, Clone)]
enum Template {
    Scalar { dep_on_prev: bool },
    Vec { dep_on_prev: bool },
    Load { addr: u32, bytes_log: u8 },
    Store { addr: u32 },
    GatherOf { base: u32, stride: u8 },
    Branch { taken: bool, site: u8 },
    Delay { cycles: u8 },
}

fn arb_stream(rng: &mut StdRng) -> Vec<Template> {
    let len = rng.random_range(1usize..200);
    (0..len)
        .map(|_| match rng.random_range(0u32..7) {
            0 => Template::Scalar {
                dep_on_prev: rng.random(),
            },
            1 => Template::Vec {
                dep_on_prev: rng.random(),
            },
            2 => Template::Load {
                addr: rng.random_range(0u32..1 << 16),
                bytes_log: rng.random_range(3u32..6) as u8,
            },
            3 => Template::Store {
                addr: rng.random_range(0u32..1 << 16),
            },
            4 => Template::GatherOf {
                base: rng.random_range(0u32..1 << 14),
                stride: rng.random_range(1u32..32) as u8,
            },
            5 => Template::Branch {
                taken: rng.random(),
                site: rng.random_range(0u32..4) as u8,
            },
            _ => Template::Delay {
                cycles: rng.random_range(1u32..40) as u8,
            },
        })
        .collect()
}

fn replay(stream: &[Template], core: CoreConfig, mem: MemConfig) -> RunStats {
    let mut e = Engine::new(core, mem);
    let mut prev = None;
    for t in stream {
        let deps: Vec<u32> = prev.into_iter().collect();
        let next = match t {
            Template::Scalar { dep_on_prev } => {
                let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                Some(e.scalar_op(AluKind::FpAdd, d))
            }
            Template::Vec { dep_on_prev } => {
                let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                Some(e.vec_op(VecOpKind::Fma, d))
            }
            Template::Load { addr, bytes_log } => {
                Some(e.load(0x10000 + *addr as u64, 1 << bytes_log))
            }
            Template::Store { addr } => {
                e.store(0x10000 + *addr as u64, 8, &deps);
                None
            }
            Template::GatherOf { base, stride } => {
                let addrs: Vec<u64> = (0..4u64)
                    .map(|i| 0x10000 + *base as u64 + i * *stride as u64 * 8)
                    .collect();
                Some(e.gather(&addrs, 8, &deps))
            }
            Template::Branch { taken, site } => {
                e.branch(*taken, *site as u32, &deps);
                None
            }
            Template::Delay { cycles } => Some(e.delay(*cycles as u32, &deps)),
        };
        if next.is_some() {
            prev = next;
        }
    }
    e.finish()
}

#[test]
fn engine_is_deterministic() {
    cases(64, 0xE1, |i, rng| {
        let stream = arb_stream(rng);
        let a = replay(&stream, CoreConfig::default(), MemConfig::default());
        let b = replay(&stream, CoreConfig::default(), MemConfig::default());
        assert_eq!(a, b, "case {i}");
    });
}

#[test]
fn cycles_respect_commit_width() {
    cases(64, 0xE2, |i, rng| {
        let stream = arb_stream(rng);
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        let floor = stats.instructions / CoreConfig::default().commit_width as u64;
        assert!(
            stats.cycles >= floor,
            "case {i}: cycles {} below commit floor {}",
            stats.cycles,
            floor
        );
        assert_eq!(stats.instructions, stream.len() as u64, "case {i}");
    });
}

#[test]
fn wider_machine_is_rarely_meaningfully_slower() {
    // Scheduling anomalies make strict monotonicity false on real
    // out-of-order machines and in this model (earlier issue can reorder
    // cache state); allow a small tolerance.
    cases(64, 0xE3, |i, rng| {
        let stream = arb_stream(rng);
        let narrow = CoreConfig {
            fetch_width: 2,
            commit_width: 2,
            scalar_alus: 1,
            vector_alus: 1,
            load_ports: 1,
            ..CoreConfig::default()
        };
        let slow = replay(&stream, narrow, MemConfig::default());
        let fast = replay(&stream, CoreConfig::default(), MemConfig::default());
        assert!(
            fast.cycles as f64 <= slow.cycles as f64 * 1.05 + 50.0,
            "case {i}: wider machine much slower: {} > {}",
            fast.cycles,
            slow.cycles
        );
    });
}

#[test]
fn faster_memory_is_rarely_meaningfully_slower() {
    cases(64, 0xE4, |i, rng| {
        let stream = arb_stream(rng);
        let slow_mem = MemConfig {
            dram_latency: 400,
            dram_bytes_per_cycle: 4.0,
            ..MemConfig::default()
        };
        let slow = replay(&stream, CoreConfig::default(), slow_mem);
        let fast = replay(&stream, CoreConfig::default(), MemConfig::default());
        assert!(
            fast.cycles as f64 <= slow.cycles as f64 * 1.05 + 50.0,
            "case {i}: faster DRAM much slower: {} > {}",
            fast.cycles,
            slow.cycles
        );
    });
}

#[test]
fn mispredicts_never_exceed_branches() {
    cases(64, 0xE5, |i, rng| {
        let stream = arb_stream(rng);
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        assert!(stats.mispredicts <= stats.branches, "case {i}");
    });
}

#[test]
fn cache_hits_plus_misses_equals_accesses() {
    cases(64, 0xE6, |i, rng| {
        let stream = arb_stream(rng);
        let stats = replay(&stream, CoreConfig::default(), MemConfig::default());
        // L2 demand accesses are L1 misses (writebacks are tracked
        // separately and not counted as demand).
        assert_eq!(stats.l2.accesses(), stats.l1.misses, "case {i}");
        assert_eq!(stats.l3.accesses(), stats.l2.misses, "case {i}");
        // DRAM reads are L3 miss fills (one line each).
        assert_eq!(stats.dram_read_bytes, stats.l3.misses * 64, "case {i}");
    });
}

#[test]
fn engine_reset_reproduces_fresh_engine() {
    // A reused (reset) engine must time streams identically to a freshly
    // constructed one — the contract that lets sweeps keep one engine's
    // allocations alive across runs.
    cases(32, 0xE7, |i, rng| {
        let stream = arb_stream(rng);
        let fresh = replay(&stream, CoreConfig::default(), MemConfig::default());
        let mut e = Engine::new(CoreConfig::default(), MemConfig::default());
        // Dirty the engine with a different stream, then reset.
        for a in 0..50u64 {
            e.load(0x9000 + a * 24, 8);
            e.scalar_op(AluKind::Int, &[]);
        }
        e.reset();
        let mut prev = None;
        for t in &stream {
            let deps: Vec<u32> = prev.into_iter().collect();
            let next = match t {
                Template::Scalar { dep_on_prev } => {
                    let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                    Some(e.scalar_op(AluKind::FpAdd, d))
                }
                Template::Vec { dep_on_prev } => {
                    let d = if *dep_on_prev { deps.as_slice() } else { &[] };
                    Some(e.vec_op(VecOpKind::Fma, d))
                }
                Template::Load { addr, bytes_log } => {
                    Some(e.load(0x10000 + *addr as u64, 1 << bytes_log))
                }
                Template::Store { addr } => {
                    e.store(0x10000 + *addr as u64, 8, &deps);
                    None
                }
                Template::GatherOf { base, stride } => {
                    let addrs: Vec<u64> = (0..4u64)
                        .map(|k| 0x10000 + *base as u64 + k * *stride as u64 * 8)
                        .collect();
                    Some(e.gather(&addrs, 8, &deps))
                }
                Template::Branch { taken, site } => {
                    e.branch(*taken, *site as u32, &deps);
                    None
                }
                Template::Delay { cycles } => Some(e.delay(*cycles as u32, &deps)),
            };
            if next.is_some() {
                prev = next;
            }
        }
        assert_eq!(e.finish(), fresh, "case {i}: reset engine diverged");
    });
}

//! `via-trace` integration tests: the conservation invariant, tracing
//! transparency (bit-identical cycles), Chrome-trace export validity, and
//! the `Engine::reset` trace-state regression.

use via_sim::prog::Inst;
use via_sim::trace::CAUSE_COUNT;
use via_sim::{AluKind, CoreConfig, Engine, MemConfig, StallCause, TraceEvent, VecOpKind};

/// Pushes a deterministic stream exercising every op class and every
/// stall source: cold loads (DRAM), gathers/scatters (ports), dependent
/// chains, alternating branches (redirects), delays, fences, and
/// commit-serialized custom ops.
fn run_stream(e: &mut Engine, with_custom: bool) {
    e.region("warmup");
    let mut chain = e.scalar_op(AluKind::Int, &[]);
    for i in 0..40u64 {
        let v = e.load(0x10_0000 + i * 4096, 8);
        chain = e.scalar_op(AluKind::FpFma, &[v, chain]);
    }
    e.region_end();
    e.region("body");
    // VL is 4 lanes on the default core; the verifier checks the list.
    let loads: Vec<u64> = (0..4u64).map(|i| 0x20_0000 + i * 808).collect();
    let stores: Vec<u64> = (0..4u64).map(|i| 0x28_0000 + i * 808).collect();
    for i in 0..30u64 {
        let g = e.gather(&loads, 8, &[]);
        let r = e.vec_op(VecOpKind::Fma, &[g]);
        e.scatter(&stores, 8, &[r]);
        e.branch(i % 2 == 0, 3, &[r]);
        if with_custom {
            e.custom_op(2, 9, true, &[r]);
        }
        if i % 7 == 0 {
            let d = e.delay(25, &[r]);
            e.store(0x30_0000 + i * 64, 8, &[d]);
        }
        if i % 11 == 0 {
            e.fence();
        }
    }
    e.region_end();
}

fn traced_engine(core: CoreConfig) -> Engine {
    let mut e = Engine::new(core, MemConfig::default());
    e.enable_stall_accounting();
    e.enable_trace_events(4096);
    e
}

#[test]
fn conservation_attributed_equals_total_cycles() {
    for rob in [16usize, 64, CoreConfig::default().rob_size] {
        let core = CoreConfig {
            rob_size: rob,
            ..CoreConfig::default().with_custom_unit()
        };
        let mut e = traced_engine(core);
        run_stream(&mut e, true);
        let report = e.stall_report().expect("accounting enabled");
        let stats = e.finish();
        assert_eq!(
            report.attributed(),
            stats.cycles,
            "conservation violated at rob_size {rob}: attributed {} != cycles {}",
            report.attributed(),
            stats.cycles
        );
        assert_eq!(report.total_cycles, stats.cycles);
        // Per-region cells partition the same total.
        let region_sum: u64 = report.regions.iter().flat_map(|r| r.cycles.iter()).sum();
        assert_eq!(region_sum, stats.cycles);
        assert!(report.active() > 0 && report.stalled() > 0);
        // With the default (large) ROB the frontier is not absorbed by
        // ROB-full waits, so the stream's other stall sources must show.
        if rob == CoreConfig::default().rob_size {
            // BranchRedirect is absent here by design: in this mix the
            // redirect window is fully shadowed by slow gather/scatter
            // commits (the commit frontier overtakes `fence_until` before
            // the post-branch instruction fetches). A branch-dominated
            // stream exposes it — see `branch_redirects_show_in_a_branchy_stream`.
            for cause in [
                StallCause::LoadPort,
                StallCause::DramBandwidth,
                StallCause::StoreBufferDrain,
            ] {
                assert!(
                    report.cause_total(cause) > 0,
                    "expected nonzero {cause:?} with the default ROB"
                );
            }
        }
    }
}

#[test]
fn branch_redirects_show_in_a_branchy_stream() {
    // Alternating-taken branches on one site defeat the two-bit
    // predictor; with only cheap scalar work in flight the redirect
    // penalty cannot hide behind the commit frontier.
    let mut e = traced_engine(CoreConfig::default());
    for i in 0..50u64 {
        let r = e.scalar_op(AluKind::Int, &[]);
        e.branch(i % 2 == 0, 9, &[r]);
        e.scalar_op(AluKind::Int, &[r]);
    }
    let report = e.stall_report().unwrap();
    let stats = e.finish();
    assert!(stats.mispredicts > 0, "stream must actually mispredict");
    assert!(
        report.cause_total(StallCause::BranchRedirect) > 0,
        "redirect penalty must be attributed"
    );
    assert_eq!(report.attributed(), stats.cycles);
}

#[test]
fn tracing_never_perturbs_cycle_counts() {
    let run = |traced: bool| {
        let core = CoreConfig::default().with_custom_unit();
        let mut e = Engine::new(core, MemConfig::default());
        if traced {
            e.enable_stall_accounting();
            e.enable_trace_events(512);
        }
        run_stream(&mut e, true);
        e.finish()
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain, traced, "tracing must be timing-transparent");
}

#[test]
fn regions_split_the_attribution() {
    let mut e = traced_engine(CoreConfig::default().with_custom_unit());
    run_stream(&mut e, true);
    let report = e.stall_report().unwrap();
    let names: Vec<&str> = report.regions.iter().map(|r| r.name.as_str()).collect();
    assert!(
        names.contains(&"warmup") && names.contains(&"body"),
        "{names:?}"
    );
    let body = report.regions.iter().find(|r| r.name == "body").unwrap();
    assert!(body.cycles.iter().sum::<u64>() > 0);
    assert_eq!(body.cycles.len(), CAUSE_COUNT);
}

#[test]
fn reset_clears_trace_state_between_kernels() {
    // Regression: reusing one engine for two kernels must not leak
    // attribution, events, or the region stack across the reset.
    let kernel_b = |e: &mut Engine| {
        e.region("b");
        for i in 0..20u64 {
            let v = e.load(0x40_0000 + i * 256, 8);
            e.scalar_op(AluKind::FpAdd, &[v]);
        }
        e.region_end();
    };

    let mut reused = traced_engine(CoreConfig::default());
    // Kernel A: leave a region deliberately open to prove the stack is
    // cleared too.
    reused.region("a_left_open");
    run_stream(&mut reused, false);
    assert!(reused.stall_report().unwrap().attributed() > 0);
    reused.reset();

    let after_reset = reused.stall_report().expect("flags survive reset");
    assert_eq!(after_reset.attributed(), 0, "attribution leaked");
    assert!(
        reused.trace_events().unwrap().is_empty(),
        "event ring leaked"
    );

    kernel_b(&mut reused);
    let mut fresh = traced_engine(CoreConfig::default());
    kernel_b(&mut fresh);

    let (r1, r2) = (
        reused.stall_report().unwrap(),
        fresh.stall_report().unwrap(),
    );
    assert_eq!(r1, r2, "reused engine must attribute like a fresh one");
    assert_eq!(
        reused.trace_events().unwrap().len(),
        fresh.trace_events().unwrap().len()
    );
    assert_eq!(reused.finish().cycles, fresh.finish().cycles);
}

#[test]
fn markers_and_regions_reach_the_ring() {
    let mut e = traced_engine(CoreConfig::default());
    e.region("row_loop");
    e.load(0x1000, 8);
    e.trace_marker("sspm mode: cam");
    e.region_end();
    let ring = e.trace_events().unwrap();
    let mut saw_marker = false;
    let mut saw_region = false;
    for event in ring.events() {
        match event {
            TraceEvent::Marker { name, .. } => saw_marker |= *name == "sspm mode: cam",
            TraceEvent::RegionBegin { .. } => saw_region = true,
            _ => {}
        }
    }
    assert!(saw_marker && saw_region);
}

// ---- Chrome-trace JSON validity ---------------------------------------

/// Minimal JSON value for the dependency-free validity check.
#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }

    fn expect(&mut self, c: u8) {
        assert_eq!(self.peek(), c, "expected {:?} at {}", c as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal at {}",
            self.pos
        );
        self.pos += lit.len();
        value
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            assert!(self.pos < self.bytes.len(), "unterminated string");
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes[self.pos];
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => panic!("bad escape \\{}", other as char),
                    }
                }
                _ => {
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("invalid UTF-8 in JSON");
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected , or ] got {:?}", other as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = {
                assert_eq!(self.peek(), b'"', "object key must be a string");
                self.string()
            };
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected , or }} got {:?}", other as char),
            }
        }
    }

    fn parse_complete(mut self) -> Json {
        let v = self.value();
        self.skip_ws();
        assert_eq!(self.pos, self.bytes.len(), "trailing garbage after JSON");
        v
    }
}

fn field<'j>(obj: &'j Json, name: &str) -> Option<&'j Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn chrome_trace_is_valid_json_with_monotonic_timestamps() {
    let mut e = traced_engine(CoreConfig::default().with_custom_unit());
    run_stream(&mut e, true);
    e.trace_marker("end of stream");
    let json = e.chrome_trace().expect("events enabled");

    let doc = Parser::new(&json).parse_complete();
    let events = field(&doc, "traceEvents").expect("traceEvents key");
    let Json::Arr(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty());

    let mut last_ts = 0.0f64;
    let mut timed = 0usize;
    for event in events {
        let ph = match field(event, "ph") {
            Some(Json::Str(s)) => s.clone(),
            _ => panic!("event missing ph"),
        };
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        let ts = match field(event, "ts") {
            Some(Json::Num(n)) => *n,
            _ => panic!("timed event missing numeric ts"),
        };
        assert!(
            ts >= last_ts,
            "timestamps must be non-decreasing: {ts} after {last_ts}"
        );
        last_ts = ts;
        timed += 1;
        if ph == "X" {
            match field(event, "dur") {
                Some(Json::Num(d)) => assert!(*d >= 1.0),
                _ => panic!("slice missing dur"),
            }
        }
    }
    assert!(
        timed > 100,
        "expected a populated trace, got {timed} events"
    );

    // Also check one Inst event in the ring obeys lifecycle ordering.
    let ring = e.trace_events().unwrap();
    for event in ring.events() {
        if let TraceEvent::Inst {
            fetch,
            issue,
            complete,
            commit,
            ..
        } = event
        {
            assert!(fetch <= issue && issue <= complete && complete <= commit);
        }
    }
}

#[test]
fn stall_report_render_names_dominant_causes() {
    let mut e = traced_engine(CoreConfig::default().with_custom_unit());
    run_stream(&mut e, true);
    let report = e.stall_report().unwrap();
    let text = report.render(8);
    assert!(text.contains("cycles"));
    assert!(text.contains("active"));
    assert!(text.contains("regions:"), "region rollup missing:\n{text}");
}

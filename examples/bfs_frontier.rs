//! Frontier-based BFS via SpMSpV — the graph-computing application the
//! paper's conclusion names ("we believe that VIA is applicable to other
//! application domains such as graph computing").
//!
//! Each BFS level is one sparse-matrix × sparse-vector product
//! `next = Aᵀ · frontier` (then masked by the visited set in software).
//! Both the dense-workspace SPA baseline and the VIA CAM kernel run every
//! level; their cycle totals accumulate over the traversal.
//!
//! ```sh
//! cargo run --release --example bfs_frontier
//! ```

use via::formats::gen;
use via::kernels::spmspv::{self, SparseVector};
use via::kernels::SimContext;

fn main() {
    // A power-law graph (social-network-like), 512 vertices.
    let n = 512usize;
    let adj = gen::rmat(n, n * 8, 33);
    // BFS traverses out-edges: columns of Aᵀ = rows of A, so use Aᵀ in CSC
    // (which shares A's row-major arrays).
    let at = adj.transpose().to_csc();
    println!(
        "graph: {} vertices, {} edges (power-law)",
        adj.rows(),
        adj.nnz()
    );

    let ctx = SimContext::default();
    let source = 3usize;
    let mut visited = vec![false; n];
    visited[source] = true;
    let mut frontier = SparseVector::from_pairs([(source, 1.0)]);
    let (mut base_cycles, mut via_cycles) = (0u64, 0u64);
    let mut level = 0usize;
    let mut reached = 1usize;

    while !frontier.is_empty() {
        level += 1;
        let base = spmspv::spa_dense(&at, &frontier, &ctx);
        let via = spmspv::via_cam(&at, &frontier, &ctx);
        assert_eq!(
            base.output, via.output,
            "machines disagreed at level {level}"
        );
        base_cycles += base.stats.cycles;
        via_cycles += via.stats.cycles;

        // Mask out already-visited vertices to form the next frontier.
        let next: Vec<(usize, f64)> = via
            .output
            .indices
            .iter()
            .filter(|&&i| !visited[i as usize])
            .map(|&i| (i as usize, 1.0))
            .collect();
        for &(i, _) in &next {
            visited[i] = true;
        }
        reached += next.len();
        println!(
            "level {level}: frontier {} -> {} new vertices",
            frontier.nnz(),
            next.len()
        );
        frontier = SparseVector::from_pairs(next);
        if level > n {
            unreachable!("BFS must terminate");
        }
    }

    println!("\nreached {reached}/{n} vertices in {level} levels",);
    println!("SpMSpV cycles over the whole traversal:");
    println!("  SPA baseline: {base_cycles:>9}");
    println!("  VIA CAM:      {via_cycles:>9}");
    println!(
        "  BFS frontier-expansion speedup: {:.2}x",
        base_cycles as f64 / via_cycles as f64
    );
}

//! Conjugate-gradient solve of a 2-D Poisson problem — the HPCG-class
//! workload the paper's introduction motivates ("SpMV is an important
//! component for the High Performance Conjugate Gradient code").
//!
//! Each CG iteration's SpMV runs through the simulator twice — once on the
//! baseline core (vectorized CSR with gathers) and once on the VIA core
//! (CSB + `vldxblkmult`) — and the cycle totals accumulate over the whole
//! solve. The vector updates (axpy/dot) are identical on both machines and
//! excluded, so the comparison isolates exactly what VIA accelerates.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use via::formats::{gen, Csb, Csr};
use via::kernels::{spmv, SimContext};

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // -Δu = f on a 24x24 grid (576 unknowns), u = 0 on the boundary.
    let n = 24usize;
    let a: Csr = gen::laplacian_2d(n);
    let b: Vec<f64> = (0..n * n)
        .map(|i| {
            let (x, y) = ((i % n) as f64 / n as f64, (i / n) as f64 / n as f64);
            (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
        })
        .collect();
    println!(
        "2-D Poisson system: {} unknowns, {} non-zeros (5-point Laplacian)",
        a.rows(),
        a.nnz()
    );

    let ctx = SimContext::default();
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).expect("block");

    // Conjugate gradients; every q = A*p goes through both simulated
    // machines and must agree.
    let dim = a.rows();
    let mut x = vec![0.0; dim];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let (mut base_cycles, mut via_cycles) = (0u64, 0u64);
    let mut iterations = 0usize;
    for _ in 0..200 {
        iterations += 1;
        let base_run = spmv::csr_vec(&a, &p, &ctx);
        let via_run = spmv::via_csb(&csb, &p, &ctx);
        assert!(
            via::formats::vec_approx_eq(&base_run.output, &via_run.output, 1e-9),
            "machines disagreed on A*p"
        );
        base_cycles += base_run.stats.cycles;
        via_cycles += via_run.stats.cycles;
        let q = via_run.output;

        let alpha = rs_old / dot(&p, &q);
        for i in 0..dim {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() < 1e-8 {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..dim {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    // Verify the solve: residual of the returned solution.
    let ax = via::formats::reference::spmv(&a, &x);
    let residual: f64 = ax
        .iter()
        .zip(&b)
        .map(|(l, r)| (l - r) * (l - r))
        .sum::<f64>()
        .sqrt();
    println!("converged in {iterations} iterations, final residual {residual:.2e}");

    println!("\nSpMV cycles over the whole solve:");
    println!("  baseline core (CSR + gathers): {base_cycles:>10}");
    println!("  VIA core (CSB + vldxblkmult):  {via_cycles:>10}");
    println!(
        "  CG-solve SpMV speedup: {:.2}x",
        base_cycles as f64 / via_cycles as f64
    );
}

//! Image histogram (paper §IV-F1 / Figure 12.a): build a 256-bin
//! luminance histogram — the database/image-processing kernel the paper
//! uses to show VIA generalizes beyond sparse algebra.
//!
//! ```sh
//! cargo run --release --example histogram_image
//! ```

use via::kernels::{histogram, SimContext};

fn main() {
    // A synthetic 128x128 "image": smooth gradients plus noise, quantized
    // to 8-bit luminance — realistic bin skew.
    let (w, h) = (128usize, 128usize);
    let pixels: Vec<u32> = (0..w * h)
        .map(|i| {
            let (x, y) = ((i % w) as f64, (i / w) as f64);
            let v = 96.0
                + 64.0 * ((x / 17.0).sin() + (y / 23.0).cos())
                + ((i as u32).wrapping_mul(2654435761) >> 27) as f64;
            (v.clamp(0.0, 255.0)) as u32
        })
        .collect();
    let nbins = 256;
    println!("{}x{} image, {} bins", w, h, nbins);

    let ctx = SimContext::default();
    let scalar = histogram::scalar(&pixels, nbins, &ctx);
    let vector = histogram::vector_cd(&pixels, nbins, &ctx);
    let via = histogram::via(&pixels, nbins, &ctx);

    // All three agree with each other (and with the golden model inside
    // the test suite).
    assert_eq!(scalar.output, vector.output);
    assert_eq!(scalar.output, via.output);
    let peak = via
        .output
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty");
    println!("peak bin: {} with {} pixels\n", peak.0, peak.1);

    println!("scalar:          {:>9} cycles", scalar.stats.cycles);
    println!(
        "vector (AVX-CD): {:>9} cycles ({} gathers, {} scatters)",
        vector.stats.cycles, vector.stats.gathers, vector.stats.scatters
    );
    println!(
        "VIA (vldxadd.d): {:>9} cycles ({} VIA instructions, zero \
         gather/scatter)",
        via.stats.cycles, via.stats.custom_ops
    );
    println!(
        "\nVIA speedup: {:.2}x vs scalar, {:.2}x vs vector (paper: 5.49x / 4.51x)",
        scalar.stats.cycles as f64 / via.stats.cycles as f64,
        vector.stats.cycles as f64 / via.stats.cycles as f64
    );
}

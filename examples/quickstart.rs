//! Quickstart: simulate SpMV on the baseline core and on a VIA-equipped
//! core, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use via::formats::{gen, Csb};
use via::kernels::{spmv, SimContext};

fn main() {
    // A 1024x1024 sparse matrix with clustered non-zeros (FEM-like) and a
    // dense input vector.
    let a = gen::blocked(1024, 16, 120, 0.5, 42);
    let x = gen::dense_vector(a.cols(), 7);
    println!(
        "matrix: {}x{}, {} non-zeros ({:.2}% dense)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.density() * 100.0
    );

    // The simulated machine: a Haswell-class out-of-order core; VIA kernels
    // get the default 16 KB / 2-port smart scratchpad (the paper's chosen
    // configuration).
    let ctx = SimContext::default();
    println!(
        "VIA config: {} ({} SSPM entries, CSB block size {})",
        ctx.via.name(),
        ctx.via.entries(),
        ctx.via.csb_block_size()
    );

    // Baseline: Eigen-style vectorized CSR with x-gathers.
    let baseline = spmv::csr_vec(&a, &x, &ctx);

    // VIA: CSB blocks tuned to half the scratchpad, multiplied with
    // vldxblkmult (paper Algorithm 4).
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).expect("power-of-two block");
    let via = spmv::via_csb(&csb, &x, &ctx);

    // Both computed the same y = A*x — through completely different
    // machinery (the VIA run's values flowed through the SSPM model).
    assert!(via::formats::vec_approx_eq(
        &baseline.output,
        &via.output,
        1e-9
    ));

    println!(
        "baseline (CSR + gathers): {:>9} cycles, {} gathers",
        baseline.stats.cycles, baseline.stats.gathers
    );
    println!(
        "VIA (CSB + vldxblkmult):  {:>9} cycles, {} VIA instructions, 0 gathers",
        via.stats.cycles, via.stats.custom_ops
    );
    println!(
        "speedup: {:.2}x",
        baseline.stats.cycles as f64 / via.stats.cycles as f64
    );
}

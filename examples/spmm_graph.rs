//! Graph analytics SpMM: counting common neighbours (paths of length 2)
//! in a power-law graph via A x Aᵀ — the GraphBLAS-style workload the
//! paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example spmm_graph
//! ```

use via::formats::gen;
use via::kernels::{spma, spmm, SimContext};

fn main() {
    // An RMAT power-law graph: 256 vertices, ~1500 edges.
    let adj = gen::rmat(256, 1500, 11);
    println!(
        "graph: {} vertices, {} edges (power-law degrees)",
        adj.rows(),
        adj.nnz()
    );

    let ctx = SimContext::default();

    // Common-neighbour counts: C = A * Aᵀ. With A in CSR, Aᵀ in CSC form
    // is just A's arrays reinterpreted — the inner product index-matches
    // neighbour lists, exactly the operation the CAM accelerates.
    let at = adj.transpose().to_csc();
    let base = spmm::inner_product(&adj, &at, &ctx);
    let via = spmm::via_cam(&adj, &at, &ctx);
    assert_eq!(base.output.nnz(), via.output.nnz());
    println!(
        "\ncommon-neighbour SpMM: {} result entries",
        via.output.nnz()
    );
    println!(
        "  inner-product baseline: {:>10} cycles ({} mispredicted merge branches)",
        base.stats.cycles, base.stats.mispredicts
    );
    println!(
        "  VIA CAM index-matching: {:>10} cycles ({} CAM searches)",
        via.stats.cycles,
        via.sspm_events.expect("via run").cam_searches
    );
    println!(
        "  speedup: {:.2}x (paper reports 6.00x on its SuiteSparse sweep)",
        base.stats.cycles as f64 / via.stats.cycles as f64
    );

    // Graph union via SpMA: merge this snapshot with a perturbed one (edge
    // insertions/deletions), the incremental-update pattern of dynamic
    // graphs.
    let snapshot2 = gen::perturb_structure(&adj, 0.8, 0.25, 12);
    let base = spma::merge_csr(&adj, &snapshot2, &ctx);
    let via = spma::via_cam(&adj, &snapshot2, &ctx);
    println!("\ngraph-union SpMA: {} merged edges", via.output.nnz());
    println!("  scalar merge baseline:  {:>10} cycles", base.stats.cycles);
    println!("  VIA CAM merge:          {:>10} cycles", via.stats.cycles);
    println!(
        "  speedup: {:.2}x (paper reports 6.14x on its SuiteSparse sweep)",
        base.stats.cycles as f64 / via.stats.cycles as f64
    );
}

//! HPCG-style SpMV deep dive: a banded matrix (like the 27-point stencil
//! systems HPCG solves), every SpMV variant the paper evaluates, and the
//! energy/bandwidth accounting of §VII-A.
//!
//! ```sh
//! cargo run --release --example spmv_csb
//! ```

use via::core::ViaConfig;
use via::energy::{roofline_analyze, EnergyModel};
use via::formats::{gen, Csb, SellCSigma, Spc5};
use via::kernels::{spmv, SimContext};

fn main() {
    // A banded system: 2048 unknowns, bandwidth 13, ~9 entries per row.
    let a = gen::banded(2048, 13, 9, 1);
    let x = gen::dense_vector(a.cols(), 2);
    println!(
        "banded system: {} rows, {} nnz, {:.1} nnz/row\n",
        a.rows(),
        a.nnz(),
        a.nnz() as f64 / a.rows() as f64
    );

    let ctx = SimContext::default();
    let vl = ctx.vl();
    let bs = ctx.via.csb_block_size();

    let csb = Csb::from_csr(&a, bs).expect("power-of-two block");
    let spc5 = Spc5::from_csr(&a, vl).expect("valid height");
    let sell = SellCSigma::from_csr(&a, vl, vl * 8).expect("valid c/sigma");

    let runs: Vec<(&str, via::kernels::KernelRun<Vec<f64>>)> = vec![
        ("scalar CSR", spmv::scalar_csr(&a, &x, &ctx)),
        ("vector CSR (gather)", spmv::csr_vec(&a, &x, &ctx)),
        ("SPC5", spmv::spc5(&spc5, &x, &ctx)),
        ("Sell-C-sigma", spmv::sell(&sell, &x, &ctx)),
        ("software CSB", spmv::csb_software(&csb, &x, &ctx)),
        ("VIA CSR", spmv::via_csr(&a, &x, &ctx)),
        ("VIA SPC5", spmv::via_spc5(&spc5, &x, &ctx)),
        ("VIA Sell-C-sigma", spmv::via_sell(&sell, &x, &ctx)),
        ("VIA CSB (Algorithm 4)", spmv::via_csb(&csb, &x, &ctx)),
    ];

    let reference = via::formats::reference::spmv(&a, &x);
    let energy_model = EnergyModel::default();
    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>12}",
        "kernel", "cycles", "IPC", "DRAM KB", "energy (uJ)"
    );
    for (name, run) in &runs {
        assert!(via::formats::vec_approx_eq(&run.output, &reference, 1e-9));
        let energy = energy_model.energy(
            &run.stats,
            run.sspm_events.as_ref(),
            run.sspm_events.as_ref().map(|_| &ctx.via),
        );
        println!(
            "{:<22} {:>10} {:>8.2} {:>10.1} {:>12.2}",
            name,
            run.stats.cycles,
            run.stats.ipc(),
            run.stats.dram_bytes() as f64 / 1024.0,
            energy.total_uj()
        );
    }

    // The §VII-A claims for the best case.
    let base = &runs.iter().find(|(n, _)| *n == "software CSB").unwrap().1;
    let best = &runs
        .iter()
        .find(|(n, _)| n.starts_with("VIA CSB"))
        .unwrap()
        .1;
    let ratio = energy_model.energy_ratio(
        &base.stats,
        &best.stats,
        best.sspm_events.as_ref().expect("via run"),
        &ctx.via,
    );
    println!(
        "\nVIA-CSB vs software CSB: {:.2}x faster, {:.2}x less energy, {:.2}x \
         higher achieved bandwidth (paper: 4.22x / 3.8x / 2.5x on its suite)",
        base.stats.cycles as f64 / best.stats.cycles as f64,
        ratio,
        best.stats.dram_bandwidth() / base.stats.dram_bandwidth().max(1e-12),
    );

    // Roofline placement: VIA raises arithmetic intensity (the dense
    // vector stops moving through DRAM); it does not add compute.
    let flops = 2 * a.nnz() as u64;
    println!("\nroofline (flops = 2*nnz = {flops}):");
    for (name, run) in [
        ("vector CSR (gather)", &runs[1].1),
        ("VIA CSB (Algorithm 4)", &runs[8].1),
    ] {
        let point = roofline_analyze(&run.stats, &ctx.core, &ctx.mem, flops);
        println!("  {:<22} {}", name, point.summary());
    }

    // The design points of Figure 9 on this one matrix.
    println!("\nSSPM design points (Figure 9 axis):");
    for config in ViaConfig::dse_points() {
        let c = SimContext::with_via(config);
        let m = Csb::from_csr(&a, config.csb_block_size()).expect("block");
        let run = spmv::via_csb(&m, &x, &c);
        println!("  {:<6} {:>9} cycles", config.name(), run.stats.cycles);
    }
}

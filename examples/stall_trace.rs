//! Observability demo: where do a kernel's cycles actually go?
//!
//! Runs SpMV on the baseline core and on the VIA core with stall-cause
//! accounting enabled, prints both CPI stacks, and writes a Chrome
//! trace-event JSON of the VIA run (open `via_csb_trace.json` in
//! <https://ui.perfetto.dev> or `chrome://tracing`).
//!
//! ```sh
//! cargo run --release --example stall_trace
//! ```

use via::formats::{gen, Csb};
use via::kernels::{spmv, SimContext, TraceOptions};

fn main() {
    let a = gen::blocked(1024, 16, 120, 0.5, 42);
    let x = gen::dense_vector(a.cols(), 7);

    // Accounting is timing-transparent: these runs report the exact same
    // cycle counts a default (untraced) context would.
    let ctx = SimContext::default().with_trace(TraceOptions::accounting());

    let baseline = spmv::csr_vec(&a, &x, &ctx);
    println!("== baseline (vectorized CSR with gathers) ==");
    print!(
        "{}",
        baseline.stall.as_ref().expect("accounting on").render(8)
    );

    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).expect("power-of-two block");
    let via = spmv::via_csb(&csb, &x, &ctx);
    println!("\n== VIA (CSB blocks through the SSPM) ==");
    print!("{}", via.stall.as_ref().expect("accounting on").render(8));
    println!(
        "\nspeedup: {:.2}x",
        baseline.cycles() as f64 / via.cycles() as f64
    );

    // Second VIA run with full event capture for the Chrome trace: every
    // instruction's fetch/issue/complete/commit, region boundaries, and
    // SSPM mode-transition markers.
    let full = SimContext::default().with_trace(TraceOptions::full(1 << 18));
    let traced = spmv::via_csb(&csb, &x, &full);
    let json = traced.chrome.expect("event capture on");
    std::fs::write("via_csb_trace.json", &json).expect("write trace");
    println!(
        "wrote via_csb_trace.json ({} KiB) — open it in Perfetto",
        json.len() / 1024
    );
}

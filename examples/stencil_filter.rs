//! Gaussian convolution filter (paper §IV-F2 / Figure 12.b): blur an
//! image with the 4x4 binomial kernel, with the image segment staged in
//! the SSPM.
//!
//! ```sh
//! cargo run --release --example stencil_filter
//! ```

use via::kernels::{stencil, SimContext};

fn main() {
    let side = 128usize;
    // A synthetic image: a bright diagonal stripe on a dark background.
    let image: Vec<f64> = (0..side * side)
        .map(|i| {
            let (x, y) = ((i % side) as isize, (i / side) as isize);
            if (x - y).abs() < 6 {
                1.0
            } else {
                0.1
            }
        })
        .collect();
    let filter = stencil::gaussian4();
    println!("{side}x{side} image, 4x4 Gaussian filter");

    let ctx = SimContext::default();
    let scalar = stencil::scalar(&image, side, side, &filter, &ctx);
    let vector = stencil::vector(&image, side, side, &filter, &ctx);
    let via = stencil::via(&image, side, side, &filter, &ctx);

    // The VIA result came out of the scratchpad datapath; check it blurred
    // the stripe the same way the scalar code did.
    assert!(via::formats::vec_approx_eq(
        &scalar.output,
        &via.output,
        1e-9
    ));
    let center = via.output[(side / 2) * side + side / 2];
    let corner = via.output[side + 1];
    println!("blurred stripe center {center:.3}, background {corner:.3}\n");

    println!("scalar baseline: {:>9} cycles", scalar.stats.cycles);
    println!("vector baseline: {:>9} cycles", vector.stats.cycles);
    println!(
        "VIA (SSPM):      {:>9} cycles ({} VIA instructions)",
        via.stats.cycles, via.stats.custom_ops
    );
    println!(
        "\nVIA speedup vs scalar: {:.2}x (paper: 3.39x vs its VIA-oblivious baseline)",
        scalar.stats.cycles as f64 / via.stats.cycles as f64
    );
}

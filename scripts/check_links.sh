#!/usr/bin/env sh
# Markdown link check: every relative link target in the repo's top-level
# documentation (and docs/) must exist on disk. External http(s) links,
# mailto:, pure #anchors, and GitHub web-relative badge links are skipped
# — the point is catching renamed/deleted files, dependency-free.
#
#   scripts/check_links.sh
set -eu
cd "$(dirname "$0")/.."

status=0
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Markdown link/image targets: the (...) part of [text](target).
    targets=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//') || continue
    for target in $targets; do
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        ../../actions/*) continue ;; # GitHub web-relative (CI badge)
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in $f: $target" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "markdown links: OK"
fi
exit $status

#!/usr/bin/env sh
# Distributed-campaign acceptance smoke: the CI proof that scale-out does
# not change results.
#
#   scripts/distributed_smoke.sh [store-dir]
#
# 1. Runs a solo campaign over a small synthetic corpus and canonicalizes
#    its store with `campaign merge` (a single-store merge sorts and
#    dedups in place).
# 2. Runs the same corpus as 3 concurrent shards (--shard i/3); shard 1
#    is killed ~30 % in (--max-jobs 1) and resumed.
# 3. Merges the shard stores in two different input orders and `cmp`s
#    results.jsonl AND cycles.jsonl byte-for-byte against the solo store.
# 4. Smoke-tests `campaign serve`: a client submits duplicate requests
#    and asserts the dedup counters; a second session must be answered
#    entirely from the memo layers without re-simulation.
#
# Stores land in the given directory (default ./distributed_smoke) so CI
# can upload them as artifacts when something diverges.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-distributed_smoke}
rm -rf "$OUT"
mkdir -p "$OUT"

BIN=target/release/campaign
if [ ! -x "$BIN" ]; then
    echo "==> building campaign binary"
    cargo build --release -p via-bench --bin campaign
fi

CORPUS="--synthetic 12 --min-rows 48 --max-rows 128 --quiet"

echo "==> solo reference run"
"$BIN" --dir "$OUT/solo" $CORPUS >/dev/null
"$BIN" merge "$OUT/solo_canon" "$OUT/solo"

echo "==> 3 concurrent shards (shard 1 killed at ~30% and resumed)"
"$BIN" --dir "$OUT/shard0" $CORPUS --shard 0/3 >/dev/null &
SHARD0=$!
"$BIN" --dir "$OUT/shard2" $CORPUS --shard 2/3 >/dev/null &
SHARD2=$!
"$BIN" --dir "$OUT/shard1" $CORPUS --shard 1/3 --max-jobs 1 >/dev/null
"$BIN" --dir "$OUT/shard1" $CORPUS --shard 1/3 --resume >/dev/null
wait $SHARD0 $SHARD2

echo "==> shard spec guard: resuming shard 1 as solo must be refused"
if "$BIN" --dir "$OUT/shard1" $CORPUS --resume >/dev/null 2>&1; then
    echo "ERROR: resume under a different shard spec was not refused" >&2
    exit 1
fi

echo "==> merge (two input orders) and byte-compare against solo"
"$BIN" merge "$OUT/merged_a" "$OUT/shard0" "$OUT/shard1" "$OUT/shard2"
"$BIN" merge "$OUT/merged_b" "$OUT/shard2" "$OUT/shard0" "$OUT/shard1"
cmp "$OUT/merged_a/results.jsonl" "$OUT/merged_b/results.jsonl"
cmp "$OUT/merged_a/cycles.jsonl" "$OUT/merged_b/cycles.jsonl"
cmp "$OUT/merged_a/results.jsonl" "$OUT/solo_canon/results.jsonl"
cmp "$OUT/merged_a/cycles.jsonl" "$OUT/solo_canon/cycles.jsonl"
echo "    merge OK (order-independent, byte-identical to solo)"

echo "==> incremental live report over a partial fleet (shards 0 and 2)"
"$BIN" report "$OUT/shard0" "$OUT/shard2" >"$OUT/partial_report.txt"
grep -q "result rows" "$OUT/partial_report.txt"

echo "==> serve smoke: duplicate requests must be deduplicated"
"$BIN" serve --dir "$OUT/serve_store" --listen 127.0.0.1:0 \
    --port-file "$OUT/serve_addr.txt" --threads 2 >"$OUT/serve_log.txt" 2>&1 &
SERVE=$!
tries=0
while [ ! -s "$OUT/serve_addr.txt" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 120 ] || ! kill -0 $SERVE 2>/dev/null; then
        echo "ERROR: serve did not come up" >&2
        cat "$OUT/serve_log.txt" >&2 || true
        exit 1
    fi
    sleep 0.5
done
ADDR=$(cat "$OUT/serve_addr.txt")
# 4 distinct matrices x 3 repeats: at least the 8 repeats must be answered
# from the coalescing/memo layers, not the engine.
"$BIN" client --addr "$ADDR" --count 4 --repeat 3 --expect-dedup 8
# A second identical session must be answered entirely from the memo.
"$BIN" client --addr "$ADDR" --count 4 --repeat 3 --expect-dedup 12 --shutdown
wait $SERVE
grep -q "memo" "$OUT/serve_log.txt"
echo "    serve smoke OK (dedup counters asserted, graceful drain)"

echo "distributed smoke: OK"

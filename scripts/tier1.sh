#!/usr/bin/env sh
# Tier-1 gate: everything that must stay green on every commit.
#
#   scripts/tier1.sh
#
# Formatting, the clippy wall, release build, full workspace test suite,
# the golden cycle-count snapshots (the bit-exactness contract for the
# timing model), the via-verify static sweep over every shipped kernel's
# instruction streams, and the simulator-throughput smoke benchmark —
# correctness and performance regressions surface in one command.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets (-D warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release (workspace)"
cargo build --release --workspace

echo "==> cargo test (workspace, release)"
cargo test --workspace --release -q

echo "==> golden cycle snapshots"
cargo test -p via-kernels --release -q --test golden_cycles

echo "==> verify_programs --quick (via-verify static sweep)"
cargo run --release -p via-bench --bin verify_programs -- --quick

echo "==> perf_smoke (simulator throughput)"
cargo run --release -p via-bench --bin perf_smoke

echo "tier-1: OK"

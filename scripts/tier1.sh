#!/usr/bin/env sh
# Tier-1 gate: everything that must stay green on every commit.
#
#   scripts/tier1.sh [--no-perf]
#
# Formatting, the clippy wall, release build, full workspace test suite,
# the golden cycle-count snapshots (the bit-exactness contract for the
# timing model), the via-verify static sweep over every shipped kernel's
# instruction streams, and the simulator-throughput smoke benchmark —
# correctness and performance regressions surface in one command.
#
# Set TIER1_SKIP_PERF=1 (or pass --no-perf) to skip the throughput
# benchmark: wall-clock numbers are meaningless on noisy shared runners,
# so CI runs perf_smoke in a separate non-gating step instead.
set -eu
cd "$(dirname "$0")/.."

for arg in "$@"; do
    case "$arg" in
    --no-perf) TIER1_SKIP_PERF=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets (-D warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release (workspace)"
cargo build --release --workspace

echo "==> cargo test (workspace, release)"
cargo test --workspace --release -q

echo "==> golden cycle snapshots"
cargo test -p via-kernels --release -q --test golden_cycles

echo "==> golden stall accounting"
cargo test -p via-kernels --release -q --test golden_stalls

echo "==> compiled-vs-interpreted golden equivalence"
cargo test -p via-kernels --release -q --test compiled_equivalence

echo "==> verify_programs --quick (via-verify static sweep)"
cargo run --release -p via-bench --bin verify_programs -- --quick

echo "==> campaign tune --quick (auto-tuner smoke, prune audit on)"
TUNE_SMOKE_DIR=$(mktemp -d)
cargo run --release -p via-bench --bin campaign -- \
    tune --dir "$TUNE_SMOKE_DIR" --quick --expect-non-default 1 >/dev/null
rm -rf "$TUNE_SMOKE_DIR"

if [ "${TIER1_SKIP_PERF:-0}" = "1" ]; then
    echo "==> perf_smoke skipped (TIER1_SKIP_PERF=1)"
    echo "==> campaign kill-and-resume smoke skipped (TIER1_SKIP_PERF=1)"
else
    echo "==> perf_smoke (simulator throughput)"
    cargo run --release -p via-bench --bin perf_smoke

    echo "==> campaign kill-and-resume smoke"
    CAMPAIGN_SMOKE_DIR=$(mktemp -d)
    trap 'rm -rf "$CAMPAIGN_SMOKE_DIR"' EXIT
    CAMPAIGN_ARGS="--synthetic 6 --min-rows 48 --max-rows 128 --quiet"
    # Kill a sweep after 2 jobs, resume it, and demand the resumed store
    # is byte-identical to an uninterrupted run's (canonical sort).
    cargo run --release -p via-bench --bin campaign -- \
        --dir "$CAMPAIGN_SMOKE_DIR/killed" $CAMPAIGN_ARGS --max-jobs 2 >/dev/null
    cargo run --release -p via-bench --bin campaign -- \
        --dir "$CAMPAIGN_SMOKE_DIR/killed" $CAMPAIGN_ARGS --resume >/dev/null
    cargo run --release -p via-bench --bin campaign -- \
        --dir "$CAMPAIGN_SMOKE_DIR/straight" $CAMPAIGN_ARGS >/dev/null
    LC_ALL=C sort "$CAMPAIGN_SMOKE_DIR/killed/results.jsonl" >"$CAMPAIGN_SMOKE_DIR/a"
    LC_ALL=C sort "$CAMPAIGN_SMOKE_DIR/straight/results.jsonl" >"$CAMPAIGN_SMOKE_DIR/b"
    cmp "$CAMPAIGN_SMOKE_DIR/a" "$CAMPAIGN_SMOKE_DIR/b"
    echo "    resume smoke OK (stores byte-identical)"
fi

echo "tier-1: OK"

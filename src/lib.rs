//! Umbrella crate re-exporting the VIA reproduction's public API.
pub use via_core as core;
pub use via_energy as energy;
pub use via_formats as formats;
pub use via_kernels as kernels;
pub use via_sim as sim;

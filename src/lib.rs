//! Umbrella crate re-exporting the VIA reproduction's public API.
//!
//! The workspace reproduces *VIA: A Smart Scratchpad for Vector Units with
//! Application to Sparse Matrix Computations* (Pavón et al., HPCA 2021) as
//! a pure-Rust, dependency-free timing study. Each member crate owns one
//! layer of the stack (see `docs/ARCHITECTURE.md` for the full map and a
//! paper-term ↔ code-symbol glossary):
//!
//! | crate | layer | paper |
//! |-------|-------|-------|
//! | [`core`] (`via-core`) | the contribution: SSPM + FIVU + ISA extension | §III–IV |
//! | [`sim`] (`via-sim`) | out-of-order timing engine, caches, stall/trace/verify tooling | §V-A |
//! | [`formats`] (`via-formats`) | CSR/CSC/CSB/Sell-C-σ/SPC5 formats, generators, Matrix Market I/O | §II |
//! | [`kernels`] (`via-kernels`) | baseline + VIA kernels emitting instruction streams | §II–IV, §VII |
//! | [`gen`] (`via-gen`) | kernel-variant generator behind the per-matrix auto-tuner | — |
//! | [`energy`] (`via-energy`) | CACTI/McPAT-like area + energy models | §VI, Table II |
//! | `via-bench` | experiment harness, figure binaries, campaign orchestrator | §V, §VII |
//! | `via-rng` | deterministic xoshiro256** PRNG behind every generator | — |
//!
//! The typical flow: a kernel in [`kernels`] walks a sparse matrix from
//! [`formats`], computes the real result while emitting a dynamic
//! instruction stream; [`sim`] retires that stream through the timing
//! model (with [`core`] supplying the SSPM/FIVU semantics and timing for
//! the new instructions); [`energy`] converts the resulting event counts
//! into area/energy estimates; and `via-bench` turns sweeps over matrices
//! and configurations into the paper's tables and figures — at corpus
//! scale via the resumable `campaign` binary.

pub use via_core as core;
pub use via_energy as energy;
pub use via_formats as formats;
pub use via_gen as gen;
pub use via_kernels as kernels;
pub use via_sim as sim;

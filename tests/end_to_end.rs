//! End-to-end integration tests: every kernel, baseline and VIA, computes
//! the exact same answers as the dense golden models, across the synthetic
//! suite and all SSPM configurations.

use via::core::ViaConfig;
use via::formats::{gen, reference, Csb, DenseMatrix, SellCSigma, Spc5};
use via::kernels::{histogram, spma, spmm, spmv, stencil, SimContext};

fn small_suite() -> Vec<via::formats::gen::GenMatrix> {
    gen::suite(&gen::SuiteConfig {
        count: 10,
        min_rows: 64,
        max_rows: 320,
        seed: 0xE2E,
        ..gen::SuiteConfig::default()
    })
}

#[test]
fn spmv_all_variants_agree_with_reference_across_suite() {
    let ctx = SimContext::default();
    let vl = ctx.vl();
    for m in small_suite() {
        let x = gen::dense_vector(m.csr.cols(), m.seed);
        let expected = reference::spmv(&m.csr, &x);
        let csb = Csb::from_csr(&m.csr, ctx.via.csb_block_size()).unwrap();
        let spc5 = Spc5::from_csr(&m.csr, vl).unwrap();
        let sell = SellCSigma::from_csr(&m.csr, vl, vl * 4).unwrap();
        let outputs = [
            ("scalar", spmv::scalar_csr(&m.csr, &x, &ctx).output),
            ("csr_vec", spmv::csr_vec(&m.csr, &x, &ctx).output),
            ("spc5", spmv::spc5(&spc5, &x, &ctx).output),
            ("sell", spmv::sell(&sell, &x, &ctx).output),
            ("csb_soft", spmv::csb_software(&csb, &x, &ctx).output),
            (
                "csb_soft_vec",
                spmv::csb_software_vec(&csb, &x, &ctx).output,
            ),
            ("via_csr", spmv::via_csr(&m.csr, &x, &ctx).output),
            ("via_spc5", spmv::via_spc5(&spc5, &x, &ctx).output),
            ("via_sell", spmv::via_sell(&sell, &x, &ctx).output),
            ("via_csb", spmv::via_csb(&csb, &x, &ctx).output),
        ];
        for (name, out) in outputs {
            assert!(
                via::formats::vec_approx_eq(&out, &expected, 1e-9),
                "{name} wrong on {}",
                m.name
            );
        }
    }
}

#[test]
fn spma_and_spmm_agree_with_reference_across_suite() {
    let ctx = SimContext::default();
    for m in small_suite().into_iter().take(6) {
        let b = gen::perturb_structure(&m.csr, 0.6, 0.5, m.seed ^ 1);
        let expected = reference::spma(&m.csr, &b).unwrap();
        let base = spma::merge_csr(&m.csr, &b, &ctx);
        assert_eq!(base.output, expected, "merge wrong on {}", m.name);
        let via_run = spma::via_cam(&m.csr, &b, &ctx);
        assert!(
            DenseMatrix::from_csr(&via_run.output)
                .approx_eq(&DenseMatrix::from_csr(&expected), 1e-9),
            "via spma wrong on {}",
            m.name
        );

        if m.csr.rows() <= 200 {
            let bc = b.to_csc();
            let expected = reference::spmm(&m.csr, &bc).unwrap();
            let base = spmm::inner_product(&m.csr, &bc, &ctx);
            assert_eq!(base.output, expected, "inner product wrong on {}", m.name);
            let via_run = spmm::via_cam(&m.csr, &bc, &ctx);
            assert!(
                DenseMatrix::from_csr(&via_run.output)
                    .approx_eq(&DenseMatrix::from_csr(&expected), 1e-9),
                "via spmm wrong on {}",
                m.name
            );
        }
    }
}

#[test]
fn all_sspm_configurations_compute_identically() {
    // The SSPM geometry must never change results — only timing.
    let a = gen::uniform(128, 128, 0.05, 99);
    let x = gen::dense_vector(a.cols(), 98);
    let expected = reference::spmv(&a, &x);
    for config in ViaConfig::all_synthesized_points() {
        let ctx = SimContext::with_via(config);
        let csb = Csb::from_csr(&a, config.csb_block_size()).unwrap();
        let run = spmv::via_csb(&csb, &x, &ctx);
        assert!(
            via::formats::vec_approx_eq(&run.output, &expected, 1e-9),
            "wrong result at {}",
            config.name()
        );
        let run = spmv::via_csr(&a, &x, &ctx);
        assert!(
            via::formats::vec_approx_eq(&run.output, &expected, 1e-9),
            "via_csr wrong at {}",
            config.name()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = gen::uniform(160, 160, 0.04, 5);
    let x = gen::dense_vector(a.cols(), 6);
    let ctx = SimContext::default();
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    let r1 = spmv::via_csb(&csb, &x, &ctx);
    let r2 = spmv::via_csb(&csb, &x, &ctx);
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(r1.output, r2.output);
    assert_eq!(r1.sspm_events, r2.sspm_events);
}

#[test]
fn histogram_and_stencil_match_golden_models() {
    let ctx = SimContext::default();
    let keys: Vec<u32> = (0..3000u32).map(|i| (i * i * 31) % 512).collect();
    let expected = reference::histogram(&keys, 512);
    assert_eq!(histogram::scalar(&keys, 512, &ctx).output, expected);
    assert_eq!(histogram::vector_cd(&keys, 512, &ctx).output, expected);
    assert_eq!(histogram::via(&keys, 512, &ctx).output, expected);

    let (w, h) = (40, 24);
    let image: Vec<f64> = gen::dense_vector(w * h, 77)
        .iter()
        .map(|v| v.abs())
        .collect();
    let filter = stencil::gaussian4();
    let expected = reference::convolve2d(&image, w, h, &filter, 4);
    for out in [
        stencil::scalar(&image, w, h, &filter, &ctx).output,
        stencil::vector(&image, w, h, &filter, &ctx).output,
        stencil::via(&image, w, h, &filter, &ctx).output,
    ] {
        assert!(via::formats::vec_approx_eq(&out, &expected, 1e-9));
    }
}

#[test]
fn umbrella_crate_reexports_work_together() {
    // Exercise the full public API path through the `via` umbrella crate.
    let mut coo = via::formats::Coo::new(4, 4);
    coo.push(0, 0, 2.0);
    coo.push(3, 3, 4.0);
    let csr = via::formats::Csr::from_coo(&coo);
    let mut engine = via::sim::Engine::new(
        via::sim::CoreConfig::default().with_custom_unit(),
        via::sim::MemConfig::default(),
    );
    let mut unit = via::core::ViaUnit::new(via::core::ViaConfig::default());
    unit.vldx_load_d(&mut engine, &[0, 1], &[1.0, 2.0], &[]);
    let (_, vals) = unit.vldx_mov_d(&mut engine, &[0, 1], &[]);
    assert_eq!(vals, vec![1.0, 2.0]);
    let stats = engine.finish();
    let energy = via::energy::EnergyModel::default().energy(
        &stats,
        Some(&unit.events()),
        Some(unit.config()),
    );
    assert!(energy.total_pj() > 0.0);
    assert_eq!(csr.nnz(), 2);
}

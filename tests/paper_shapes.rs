//! Shape tests for the paper's headline results: the reproduction must
//! preserve *who wins and roughly by how much* on representative inputs
//! (the full sweeps live in the `via-bench` binaries).

use via::formats::{gen, Csb};
use via::kernels::{histogram, spma, spmm, spmv, stencil, SimContext};

#[test]
fn via_csb_spmv_wins_big_on_clustered_matrices() {
    // Paper §VII-A: 4.22x average, larger on dense-block matrices.
    let ctx = SimContext::default();
    let a = gen::blocked(768, 16, 180, 0.5, 21);
    let x = gen::dense_vector(a.cols(), 22);
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    let base = spmv::csb_software(&csb, &x, &ctx);
    let via = spmv::via_csb(&csb, &x, &ctx);
    let speedup = base.cycles() as f64 / via.cycles() as f64;
    assert!(
        speedup > 2.0,
        "VIA-CSB speedup {speedup:.2} below the paper's band"
    );
}

#[test]
fn via_gains_grow_with_block_density() {
    // The Figure 10 trend: denser CSB blocks amortize the x-chunk preload.
    let ctx = SimContext::default();
    let speedup = |a: &via::formats::Csr| {
        let x = gen::dense_vector(a.cols(), 1);
        let csb = Csb::from_csr(a, ctx.via.csb_block_size()).unwrap();
        spmv::csb_software(&csb, &x, &ctx).cycles() as f64
            / spmv::via_csb(&csb, &x, &ctx).cycles() as f64
    };
    let sparse_blocks = gen::uniform(512, 512, 0.004, 31);
    let dense_blocks = gen::blocked(512, 16, 200, 0.6, 32);
    assert!(
        speedup(&dense_blocks) > speedup(&sparse_blocks) * 0.9,
        "denser blocks should not benefit less: {:.2} vs {:.2}",
        speedup(&dense_blocks),
        speedup(&sparse_blocks)
    );
}

#[test]
fn via_spma_beats_merge_by_paper_band() {
    // Paper §VII-B: 6.14x average; denser rows gain more. Require > 2x on
    // a moderately dense pair.
    let ctx = SimContext::default();
    let a = gen::uniform(512, 512, 0.02, 41);
    let b = gen::perturb_structure(&a, 0.6, 0.5, 42);
    let base = spma::merge_csr(&a, &b, &ctx);
    let via = spma::via_cam(&a, &b, &ctx);
    let speedup = base.cycles() as f64 / via.cycles() as f64;
    assert!(speedup > 2.0, "SpMA speedup {speedup:.2}");
}

#[test]
fn via_spmm_beats_inner_product_by_paper_band() {
    // Paper §VII-C: 6.00x average. Require > 3x.
    let ctx = SimContext::default();
    let a = gen::uniform(160, 160, 0.05, 51);
    let b = gen::uniform(160, 160, 0.05, 52).to_csc();
    let base = spmm::inner_product(&a, &b, &ctx);
    let via = spmm::via_cam(&a, &b, &ctx);
    let speedup = base.cycles() as f64 / via.cycles() as f64;
    assert!(speedup > 3.0, "SpMM speedup {speedup:.2}");
}

#[test]
fn histogram_ordering_matches_figure_12a() {
    // VIA > vector > scalar (paper: 5.49x and 4.51x over scalar/vector).
    let ctx = SimContext::default();
    let keys: Vec<u32> = (0..6000u32)
        .map(|i| (i.wrapping_mul(2654435761)) % 256)
        .collect();
    let s = histogram::scalar(&keys, 256, &ctx).cycles();
    let v = histogram::vector_cd(&keys, 256, &ctx).cycles();
    let w = histogram::via(&keys, 256, &ctx).cycles();
    assert!(w < v, "VIA ({w}) must beat vector ({v})");
    assert!(v < s, "vector ({v}) must beat scalar ({s})");
    assert!(s as f64 / w as f64 > 2.0, "VIA vs scalar below band");
}

#[test]
fn stencil_beats_scalar_baseline() {
    // Paper §VII-D: 3.39x over the VIA-oblivious baseline. Require > 1.5x.
    let ctx = SimContext::default();
    let side = 96;
    let image: Vec<f64> = gen::dense_vector(side * side, 61)
        .iter()
        .map(|v| v.abs())
        .collect();
    let filter = stencil::gaussian4();
    let base = stencil::scalar(&image, side, side, &filter, &ctx);
    let via = stencil::via(&image, side, side, &filter, &ctx);
    let speedup = base.cycles() as f64 / via.cycles() as f64;
    assert!(speedup > 1.5, "stencil speedup {speedup:.2}");
}

#[test]
fn dse_ordering_matches_figure_9() {
    // 16_4p must be the best configuration and 4_2p the worst (or tied):
    // the Figure 9 ordering.
    let a = gen::blocked(2048, 16, 700, 0.5, 71);
    let x = gen::dense_vector(a.cols(), 72);
    let mut cycles = std::collections::HashMap::new();
    for config in via::core::ViaConfig::dse_points() {
        let ctx = SimContext::with_via(config);
        let csb = Csb::from_csr(&a, config.csb_block_size()).unwrap();
        cycles.insert(config.name(), spmv::via_csb(&csb, &x, &ctx).cycles());
    }
    assert!(
        cycles["16_4p"] <= cycles["4_2p"],
        "16_4p ({}) should not lose to 4_2p ({})",
        cycles["16_4p"],
        cycles["4_2p"]
    );
    assert!(cycles["16_2p"] <= cycles["4_2p"]);
}

#[test]
fn via_csb_eliminates_indexed_memory_ops_and_cuts_dram_traffic() {
    // The mechanism behind the §VII-A bandwidth claim: no gathers, less
    // partial-result traffic.
    let ctx = SimContext::default();
    let a = gen::blocked(512, 16, 150, 0.5, 81);
    let x = gen::dense_vector(a.cols(), 82);
    let csb = Csb::from_csr(&a, ctx.via.csb_block_size()).unwrap();
    let base = spmv::csr_vec(&a, &x, &ctx);
    let via = spmv::via_csb(&csb, &x, &ctx);
    assert!(base.stats.indexed_elems > 0);
    assert_eq!(via.stats.indexed_elems, 0);
    assert!(via.stats.dram_bytes() <= base.stats.dram_bytes());
}
